package encoding

import (
	"bytes"
	"testing"

	"dpmg/internal/mg"
	"dpmg/internal/stream"
)

// FuzzUnmarshalManager feeds arbitrary bytes — including mutations of a
// genuine snapshot seeded into the corpus — to the manager-snapshot
// decoder. The decoder must never panic, and any accepted document whose
// shard states also pass the deep mg.Restore validation (the full
// dpmg.RestoreManager acceptance bar) must re-encode to exactly the bytes
// it decoded from: canonical form means decode∘encode is the identity.
func FuzzUnmarshalManager(f *testing.F) {
	sk := mg.New(3, 9)
	for _, x := range []stream.Item{1, 2, 2, 3, 9, 9, 9} {
		sk.Update(x)
	}
	var seed bytes.Buffer
	if err := MarshalManager(&seed, []StreamState{{
		Name: "s0", K: 3, Universe: 9, Shards: 1,
		BudgetEps: 1, BudgetDelta: 0.25, SpentEps: 0.5, SpentDelta: 0.125,
		Releases: 1, Batches: 2, Ingested: 7,
		ShardSketches: []*mg.Sketch{sk},
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("DPMG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		states, err := UnmarshalManager(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		// Accepted documents round-trip canonically: re-marshaling from the
		// decoded wires must reproduce the input bytes exactly.
		remarshal := make([]StreamState, len(states))
		for i, s := range states {
			remarshal[i] = s
			remarshal[i].ShardSketches = make([]*mg.Sketch, len(s.ShardWires))
			for j, w := range s.ShardWires {
				rsk, err := mg.Restore(w.K, w.Universe, w.N, w.Decrements, w.Counts())
				if err != nil {
					// Structurally valid wire whose Algorithm 1 bookkeeping
					// fails the deep Fact 7 validation: the encoding layer
					// accepts it, dpmg.RestoreManager rejects it via this
					// same mg.Restore error. Nothing to round-trip.
					return
				}
				remarshal[i].ShardSketches[j] = rsk
			}
		}
		if err := MarshalManager(&out, remarshal); err != nil {
			t.Fatalf("accepted snapshot does not re-marshal: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted snapshot is not canonical:\n in %x\nout %x", data, out.Bytes())
		}
	})
}
