package encoding

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"dpmg/internal/merge"
	"dpmg/internal/mg"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

// TestDeltaStreamRoundTrip: a FormatDelta offload record decodes to the
// same state as its FormatFixed twin, remembers its format, and
// re-marshals byte-identically (the double-offload idempotence property,
// per format version).
func TestDeltaStreamRoundTrip(t *testing.T) {
	s := streamFixture(t)
	var fixed bytes.Buffer
	if err := MarshalStream(&fixed, &s); err != nil {
		t.Fatal(err)
	}
	s.Format = FormatDelta
	var delta bytes.Buffer
	if err := MarshalStream(&delta, &s); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fixed.Bytes(), delta.Bytes()) {
		t.Fatal("formats produced identical bytes")
	}

	df, err := UnmarshalStream(bytes.NewReader(delta.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if df.Format != FormatDelta {
		t.Fatalf("decoded format = %d, want %d", df.Format, FormatDelta)
	}
	ff, err := UnmarshalStream(bytes.NewReader(fixed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ff.Format != FormatFixed {
		t.Fatalf("decoded format = %d, want %d", ff.Format, FormatFixed)
	}
	// Same state either way, format tag aside.
	df2 := *df
	df2.Format = ff.Format
	if !reflect.DeepEqual(&df2, ff) {
		t.Errorf("formats decode to different states:\n delta %+v\n fixed %+v", df, ff)
	}

	// Re-marshal from the decoded record: byte-identical per format.
	remarshal := *df
	remarshal.ShardSketches = make([]*mg.Sketch, len(df.ShardWires))
	for j, w := range df.ShardWires {
		rsk, err := mg.Restore(w.K, w.Universe, w.N, w.Decrements, w.Counts())
		if err != nil {
			t.Fatal(err)
		}
		remarshal.ShardSketches[j] = rsk
	}
	var again bytes.Buffer
	if err := MarshalStream(&again, &remarshal); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), delta.Bytes()) {
		t.Error("delta record is not canonical across decode∘encode")
	}
}

// TestDeltaRecordSmaller pins the cold-tier win this format exists for: on
// the Zipf(1.05) k=256 acceptance workload the delta record must be at
// least 3x smaller than the fixed one.
func TestDeltaRecordSmaller(t *testing.T) {
	const k, d = 256, 1 << 16
	const shards = 8
	s := StreamState{
		Name: "zipf", K: k, Universe: d, Shards: shards,
		BudgetEps: 1, BudgetDelta: 1e-6,
		Batches: 1, Ingested: shards << 18,
	}
	for i := 0; i < shards; i++ {
		sk := mg.New(k, d)
		sk.Process(workload.Zipf(1<<18, d, 1.05, uint64(i+1)))
		s.ShardSketches = append(s.ShardSketches, sk)
	}
	var fixed, delta bytes.Buffer
	if err := MarshalStream(&fixed, &s); err != nil {
		t.Fatal(err)
	}
	s.Format = FormatDelta
	if err := MarshalStream(&delta, &s); err != nil {
		t.Fatal(err)
	}
	ratio := float64(fixed.Len()) / float64(delta.Len())
	t.Logf("fixed %d B, delta %d B, ratio %.2fx", fixed.Len(), delta.Len(), ratio)
	if ratio < 3 {
		t.Errorf("delta record only %.2fx smaller, want >= 3x", ratio)
	}
}

// TestDeltaRejectsNonMinimalVarint: a padded varint (0x80 0x00 prefix for
// what fits in one byte) decodes to the same value, so accepting it would
// give two byte strings for one state — the decoder must refuse.
func TestDeltaRejectsNonMinimalVarint(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHeader(&buf, header{Kind: KindSummary, K: 4, Entries: 1}, FormatDelta); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0x83, 0x00}) // key 3, non-minimal
	buf.Write([]byte{0x05})       // count 5
	if _, err := UnmarshalSummary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("non-minimal varint accepted")
	}

	buf.Reset()
	if err := writeHeader(&buf, header{Kind: KindSummary, K: 4, Entries: 2}, FormatDelta); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0x03, 0x05}) // key 3, count 5
	buf.Write([]byte{0x00, 0x07}) // zero delta: keys not strictly ascending
	if _, err := UnmarshalSummary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("zero key delta accepted")
	}
}

// TestDeltaSummaryDecodesEqual: the same summary serialized both ways
// decodes to identical columns through the public decoder.
func TestDeltaSummaryDecodesEqual(t *testing.T) {
	sk := mg.New(32, 1000)
	sk.Process(workload.Zipf(20000, 1000, 1.2, 9))
	sum, err := merge.FromCounters(32, 1000, sk.RealCounters())
	if err != nil {
		t.Fatal(err)
	}
	var fixed, delta bytes.Buffer
	if err := MarshalSummary(&fixed, sum); err != nil {
		t.Fatal(err)
	}
	if err := marshalSummary(&delta, sum, FormatDelta); err != nil {
		t.Fatal(err)
	}
	a, err := UnmarshalSummary(&fixed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalSummary(&delta)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || !reflect.DeepEqual(a.Keys(), b.Keys()) || !reflect.DeepEqual(a.Counts(), b.Counts()) {
		t.Error("formats decode to different summaries")
	}
}

// TestManagerRejectsDeltaFormat: manager snapshots are pinned to the fixed
// format; a version-2 KindManager header must be refused, not decoded.
func TestManagerRejectsDeltaFormat(t *testing.T) {
	states := managerFixture(t)
	var buf bytes.Buffer
	if err := MarshalManager(&buf, states); err != nil {
		t.Fatal(err)
	}
	doc := buf.Bytes()
	doc[4] = byte(FormatDelta) // version byte lives after the 4-byte magic
	if _, err := UnmarshalManager(bytes.NewReader(doc)); err == nil {
		t.Error("delta-format manager snapshot accepted")
	}
}

// TestStreamRejectsMixedFormats: a record whose nested blob disagrees with
// the outer header's format must be refused — re-encoding would normalize
// it, breaking the canonical-bytes property.
func TestStreamRejectsMixedFormats(t *testing.T) {
	s := streamFixture(t)
	s.Format = FormatDelta
	var buf bytes.Buffer
	if err := MarshalStream(&buf, &s); err != nil {
		t.Fatal(err)
	}
	doc := buf.Bytes()
	// Find the first nested header (magic recurs) and flip its version
	// byte back to fixed.
	inner := bytes.Index(doc[4:], []byte("DPMG"))
	if inner < 0 {
		t.Fatal("no nested blob found")
	}
	doc[4+inner+4] = byte(FormatFixed)
	if _, err := UnmarshalStream(bytes.NewReader(doc)); err == nil {
		t.Error("mixed-format record accepted")
	}
}

// FuzzOffloadRecordRoundTrip is the delta-codec sibling of
// FuzzUnmarshalStream: arbitrary bytes — seeded with records in both
// format versions — must either be rejected or decode to a state that
// re-marshals to exactly the input bytes, in the input's format version.
func FuzzOffloadRecordRoundTrip(f *testing.F) {
	sk := mg.New(3, 9)
	for _, x := range []stream.Item{1, 2, 2, 3, 9, 9, 9} {
		sk.Update(x)
	}
	st := StreamState{
		Name: "s0", K: 3, Universe: 9, Shards: 1,
		BudgetEps: 1, BudgetDelta: 0.25, SpentEps: 0.5, SpentDelta: 0.125,
		Releases: 1, Batches: 2, Ingested: 7,
		ShardSketches:  []*mg.Sketch{sk},
		IngestCounters: 3,
	}
	for _, format := range []Format{FormatFixed, FormatDelta} {
		st.Format = format
		var seed bytes.Buffer
		if err := MarshalStream(&seed, &st); err != nil {
			f.Fatal(err)
		}
		f.Add(seed.Bytes())
	}
	f.Add([]byte("DPMG\x02\x05"))
	f.Add([]byte{0x80, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !s.Format.valid() {
			t.Fatalf("decoder returned invalid format %d", s.Format)
		}
		remarshal := *s
		remarshal.ShardSketches = make([]*mg.Sketch, len(s.ShardWires))
		for j, w := range s.ShardWires {
			rsk, err := mg.Restore(w.K, w.Universe, w.N, w.Decrements, w.Counts())
			if err != nil {
				return
			}
			remarshal.ShardSketches[j] = rsk
		}
		var out bytes.Buffer
		if err := MarshalStream(&out, &remarshal); err != nil {
			t.Fatalf("accepted record does not re-marshal: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("decode∘encode is not the identity:\n in  %x\n out %x", data, out.Bytes())
		}
	})
}

// TestUvarintCanonicalMatchesStdlib: for every minimally encoded value the
// canonical reader agrees with encoding/binary; it only diverges by
// rejecting padded forms.
func TestUvarintCanonicalMatchesStdlib(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 16383, 16384, 1<<32 - 1, 1 << 32, 1<<64 - 1}
	for _, v := range vals {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		got, err := readUvarintCanonical(bytes.NewReader(buf[:n]))
		if err != nil || got != v {
			t.Errorf("value %d: got %d, err %v", v, got, err)
		}
	}
	// 10-byte encoding with final group > 1 overflows 64 bits.
	over := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}
	if _, err := readUvarintCanonical(bytes.NewReader(over)); err == nil {
		t.Error("overflowing varint accepted")
	}
}
