package encoding

import (
	"bytes"
	"testing"

	"dpmg/internal/mg"
	"dpmg/internal/stream"
)

// FuzzUnmarshalStream is FuzzUnmarshalManager's sibling for standalone
// offload records: the decoder must never panic, and any accepted record
// whose shard states also pass the deep mg.Restore validation must
// re-encode to exactly the bytes it decoded from.
func FuzzUnmarshalStream(f *testing.F) {
	sk := mg.New(3, 9)
	for _, x := range []stream.Item{1, 2, 2, 3, 9, 9, 9} {
		sk.Update(x)
	}
	var seed bytes.Buffer
	if err := MarshalStream(&seed, &StreamState{
		Name: "s0", K: 3, Universe: 9, Shards: 1,
		BudgetEps: 1, BudgetDelta: 0.25, SpentEps: 0.5, SpentDelta: 0.125,
		Releases: 1, Batches: 2, Ingested: 7,
		ShardSketches:  []*mg.Sketch{sk},
		AggCounters:    0,
		IngestCounters: 3,
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("DPMG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		remarshal := *s
		remarshal.ShardSketches = make([]*mg.Sketch, len(s.ShardWires))
		for j, w := range s.ShardWires {
			rsk, err := mg.Restore(w.K, w.Universe, w.N, w.Decrements, w.Counts())
			if err != nil {
				// Structurally valid wire whose Algorithm 1 bookkeeping fails
				// the deep validation; dpmg's fault-in rejects it the same
				// way. Nothing to round-trip.
				return
			}
			remarshal.ShardSketches[j] = rsk
		}
		var out bytes.Buffer
		if err := MarshalStream(&out, &remarshal); err != nil {
			t.Fatalf("accepted record does not re-marshal: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("decode∘encode is not the identity:\n in  %x\n out %x", data, out.Bytes())
		}
	})
}
