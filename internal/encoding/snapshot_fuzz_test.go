package encoding

import (
	"bytes"
	"testing"

	"dpmg/internal/core"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/stream"
)

// FuzzSketchSnapshotRoundTrip is the snapshot/restore safety net for the
// unified release API: for fuzz-shaped streams, a sketch restored from its
// wire state must (a) report identical observables, (b) release
// byte-identically to the original under the same seed — both the
// continuous and the discrete mechanism, which between them consume the
// noise source through every draw path — and (c) keep behaving identically
// when the stream continues after the restore.
func FuzzSketchSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{3, 5, 1, 2, 3, 4, 5, 1, 1, 2})
	f.Add([]byte{1, 3, 9, 9, 9, 9})
	f.Add([]byte{8, 2, 1, 0, 1, 0, 1, 0, 1, 6, 6, 6, 6, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		k := int(data[0]%8) + 1
		d := uint64(data[1]%12) + 2
		cut := int(data[2]) // stream position of the snapshot
		sk := mg.New(k, d)
		rest := make([]stream.Item, 0, len(data))
		for i, b := range data[3:] {
			x := stream.Item(uint64(b)%d + 1)
			if i < cut {
				sk.Update(x)
			} else {
				rest = append(rest, x)
			}
		}

		var buf bytes.Buffer
		if err := MarshalSketch(&buf, sk); err != nil {
			t.Fatal(err)
		}
		wire, err := UnmarshalSketch(&buf)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := mg.Restore(wire.K, wire.Universe, wire.N, wire.Decrements, wire.Counts())
		if err != nil {
			t.Fatalf("genuine snapshot rejected: %v", err)
		}

		compare := func(stage string, a, b *mg.Sketch) {
			t.Helper()
			if a.N() != b.N() || a.K() != b.K() || a.Universe() != b.Universe() ||
				a.Decrements() != b.Decrements() {
				t.Fatalf("%s: bookkeeping drift", stage)
			}
			for x := stream.Item(1); uint64(x) <= d; x++ {
				if a.Estimate(x) != b.Estimate(x) {
					t.Fatalf("%s: estimate drift at %d: %d vs %d", stage, x, a.Estimate(x), b.Estimate(x))
				}
			}
			p := core.Params{Eps: 1, Delta: 1e-6}
			seed := uint64(len(rest))*2654435761 + 42
			ra, errA := core.Release(a, p, noise.NewSource(seed))
			rb, errB := core.Release(b, p, noise.NewSource(seed))
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: release error drift: %v vs %v", stage, errA, errB)
			}
			if len(ra) != len(rb) {
				t.Fatalf("%s: release support drift: %d vs %d", stage, len(ra), len(rb))
			}
			for x, v := range ra {
				if rb[x] != v {
					t.Fatalf("%s: release value drift at %d: %v vs %v", stage, x, rb[x], v)
				}
			}
			ga, errA := core.ReleaseGeometric(a, p, noise.NewSource(seed))
			gb, errB := core.ReleaseGeometric(b, p, noise.NewSource(seed))
			if (errA == nil) != (errB == nil) || len(ga) != len(gb) {
				t.Fatalf("%s: geometric release drift", stage)
			}
			for x, v := range ga {
				if gb[x] != v {
					t.Fatalf("%s: geometric value drift at %d", stage, x)
				}
			}
		}

		compare("at snapshot", sk, restored)
		for _, x := range rest {
			sk.Update(x)
			restored.Update(x)
		}
		compare("after continued ingest", sk, restored)
	})
}
