package encoding

import (
	"bytes"
	"reflect"
	"testing"

	"dpmg/internal/merge"
	"dpmg/internal/mg"
	"dpmg/internal/stream"
)

// FuzzUnmarshalSummary throws arbitrary bytes at the decoder: it must
// either return an error or a structurally valid summary, never panic and
// never allocate unboundedly (the k guard caps entries).
func FuzzUnmarshalSummary(f *testing.F) {
	f.Add([]byte("DPMG"))
	f.Add([]byte("DPMG\x01\x01" + string(make([]byte, 40))))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSummary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.K <= 0 || s.Len() > s.K {
			t.Fatalf("decoder returned invalid summary: k=%d entries=%d", s.K, s.Len())
		}
		for _, c := range s.Counts() {
			if c <= 0 {
				t.Fatal("decoder returned non-positive counter")
			}
		}
		// A decoded summary must re-encode and decode to itself.
		var buf bytes.Buffer
		if err := MarshalSummary(&buf, s); err != nil {
			t.Fatal(err)
		}
		s2, err := UnmarshalSummary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.K != s.K || s2.Len() != s.Len() {
			t.Fatal("re-encode not stable")
		}
	})
}

// FuzzRoundTrip drives fuzz-shaped streams through a real Algorithm 1
// sketch and asserts that every wire kind round-trips losslessly:
// marshal(state) → unmarshal → identical state. Together with
// FuzzUnmarshalSummary (decoder robustness on arbitrary bytes) this pins
// the wire format from both directions.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{3, 5, 1, 2, 3, 4, 5, 1, 1, 2})
	f.Add([]byte{1, 9, 0, 0, 0, 7, 7, 7})
	f.Add([]byte{8, 2, 1, 0, 1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		k := int(data[0]%8) + 1
		d := uint64(data[1]%12) + 2
		sk := mg.New(k, d)
		items := make([]stream.Item, 0, len(data)-2)
		for _, b := range data[2:] {
			x := stream.Item(uint64(b)%d + 1)
			items = append(items, x)
			sk.Update(x)
		}

		// Full Algorithm 1 state (KindCounters).
		var buf bytes.Buffer
		if err := MarshalSketch(&buf, sk); err != nil {
			t.Fatal(err)
		}
		wire, err := UnmarshalSketch(&buf)
		if err != nil {
			t.Fatalf("sketch round trip failed: %v", err)
		}
		if wire.K != sk.K() || wire.Universe != sk.Universe() ||
			wire.N != sk.N() || wire.Decrements != sk.Decrements() {
			t.Fatalf("sketch header mutated: %+v vs k=%d d=%d n=%d decs=%d",
				wire, sk.K(), sk.Universe(), sk.N(), sk.Decrements())
		}
		if !reflect.DeepEqual(wire.Counts(), sk.Counters()) {
			t.Fatalf("sketch counters mutated: %v vs %v", wire.Counts(), sk.Counters())
		}

		// Mergeable summary (KindSummary).
		sum, err := merge.FromCounters(k, d, sk.Counters())
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := MarshalSummary(&buf, sum); err != nil {
			t.Fatal(err)
		}
		sum2, err := UnmarshalSummary(&buf)
		if err != nil {
			t.Fatalf("summary round trip failed: %v", err)
		}
		if sum2.K != sum.K || !reflect.DeepEqual(sum2.CountsMap(), sum.CountsMap()) {
			t.Fatalf("summary mutated: %+v vs %+v", sum2.CountsMap(), sum.CountsMap())
		}

		// Raw item batch (the /v1/batch body format).
		buf.Reset()
		if err := MarshalItems(&buf, items); err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalItems(&buf, len(items)+1)
		if err != nil {
			t.Fatalf("items round trip failed: %v", err)
		}
		if len(got) != len(items) {
			t.Fatalf("items length mutated: %d vs %d", len(got), len(items))
		}
		for i := range got {
			if got[i] != items[i] {
				t.Fatalf("item %d mutated: %d vs %d", i, got[i], items[i])
			}
		}
	})
}
