package encoding

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalSummary throws arbitrary bytes at the decoder: it must
// either return an error or a structurally valid summary, never panic and
// never allocate unboundedly (the k guard caps entries).
func FuzzUnmarshalSummary(f *testing.F) {
	f.Add([]byte("DPMG"))
	f.Add([]byte("DPMG\x01\x01" + string(make([]byte, 40))))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSummary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.K <= 0 || len(s.Counts) > s.K {
			t.Fatalf("decoder returned invalid summary: k=%d entries=%d", s.K, len(s.Counts))
		}
		for _, c := range s.Counts {
			if c <= 0 {
				t.Fatal("decoder returned non-positive counter")
			}
		}
		// A decoded summary must re-encode and decode to itself.
		var buf bytes.Buffer
		if err := MarshalSummary(&buf, s); err != nil {
			t.Fatal(err)
		}
		s2, err := UnmarshalSummary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.K != s.K || len(s2.Counts) != len(s.Counts) {
			t.Fatal("re-encode not stable")
		}
	})
}
