package experiment

import (
	"fmt"
	"math/rand/v2"

	"dpmg/internal/continual"
	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

// E11Continual measures the continual-observation extension (the Chan et
// al. setting, with Algorithm 2 as the subroutine the paper proposes):
// final-epoch max error of the uniform-budget strategy versus the dyadic
// binary-mechanism strategy as the number of epochs T grows, under one
// fixed total budget.
func E11Continual(c Config) *Table {
	ts := []int{4, 16, 64, 256}
	perEpoch := 4000
	// d < k makes the sketches exact, so the measured error isolates the
	// privacy noise the two strategies differ in (the sketch error term is
	// identical for both and grows with the prefix length regardless).
	d := 50
	k := 64
	eps, delta := 4.0, 1e-5
	if c.Quick {
		ts = []int{4, 16, 64}
		perEpoch = 1000
	}
	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("Continual observation: final-epoch max error vs epochs T (total eps=%.0f)", eps),
		Columns: []string{"T", "uniform", "dyadic", "uniform-pred", "dyadic-pred"},
		Notes: []string{
			"uniform re-releases the prefix each epoch (advanced composition); dyadic releases each dyadic block once",
			"predictions are the per-epoch threshold formulas; dyadic wins for large T as the binary mechanism predicts",
		},
	}
	for _, T := range ts {
		data := workload.Zipf(T*perEpoch, d, 1.1, c.Seed+uint64(T))
		truth := hist.Exact(data)
		run := func(s continual.Strategy) float64 {
			m, err := continual.NewMonitor(continual.Options{
				K: k, Universe: uint64(d), Epochs: T,
				Eps: eps, Delta: delta, Strategy: s, Seed: c.Seed + uint64(11*T),
			})
			if err != nil {
				panic(err)
			}
			var last hist.Estimate
			for e := 0; e < T; e++ {
				for i := 0; i < perEpoch; i++ {
					m.Update(data[e*perEpoch+i])
				}
				last, err = m.EndEpoch()
				if err != nil {
					panic(err)
				}
			}
			return hist.MaxError(last, truth)
		}
		t.AddRow(T,
			run(continual.Uniform),
			run(continual.Dyadic),
			continual.UniformNoisePerEpoch(eps, delta, T),
			continual.DyadicNoisePerEpoch(eps, delta, T),
		)
	}
	return t
}

// E12EvictionAblation ablates the Algorithm 1 design requirement that the
// zero-counter eviction order be independent of the stream. The two
// stream-independent orders (min key — the paper's choice — and max key)
// keep the full Lemma 8 neighbor structure; the history-dependent
// oldest-zero order (what an LRU-style implementation would do) violates
// it, which would silently void the privacy proof.
func E12EvictionAblation(c Config) *Table {
	trials := 30000
	if c.Quick {
		trials = 6000
	}
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("Eviction-policy ablation: Lemma 8 structure over %d random neighbor pairs", trials),
		Columns: []string{"policy", "stream-independent", "worst-key-diff", "structure-violations", "lemma8-holds"},
		Notes: []string{
			"violations under oldest-zero are rare (a handful per 30000 pairs) but any violation voids the privacy proof",
		},
	}
	policies := []struct {
		name  string
		p     mg.EvictionPolicy
		indep bool
	}{
		{"min-zero (paper)", mg.MinZero, true},
		{"max-zero", mg.MaxZero, true},
		{"oldest-zero (LRU-style)", mg.OldestZero, false},
	}
	for _, pol := range policies {
		rng := rand.New(rand.NewPCG(c.Seed+12, uint64(pol.p)+3))
		worst, violations := 0, 0
		for trial := 0; trial < trials; trial++ {
			k := 2 + rng.IntN(5)
			d := uint64(3 + rng.IntN(8))
			n := 5 + rng.IntN(200)
			str := make(stream.Stream, n)
			for i := range str {
				str[i] = stream.Item(rng.IntN(int(d)) + 1)
			}
			a := mg.NewWithPolicy(k, d, pol.p)
			a.Process(str)
			b := mg.NewWithPolicy(k, d, pol.p)
			b.Process(str.RemoveAt(rng.IntN(n)))
			ca, cb := a.Counters(), b.Counters()
			diff := 0
			for x := range ca {
				if _, ok := cb[x]; !ok {
					diff++
				}
			}
			if diff > worst {
				worst = diff
			}
			if mg.CheckNeighborStructure(k, ca, cb) != nil {
				violations++
			}
		}
		t.AddRow(pol.name, pol.indep, worst, violations, violations == 0 && worst <= 2)
	}
	return t
}
