package experiment

import (
	"math"

	"dpmg/internal/core"
	"dpmg/internal/gshm"
	"dpmg/internal/hist"
	"dpmg/internal/merge"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/pamg"
	"dpmg/internal/puredp"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

// E6Merging reproduces the Section 7 comparison across aggregation settings
// as the number of merged streams l grows:
//
//   - untrusted aggregator (Chan et al.'s setting, with PMG as the
//     subroutine): local releases merged after noising — error grows
//     linearly in l on the worst-case input;
//   - trusted aggregator with the Section 6 reduction: one noising of the
//     exact aggregate — error independent of l (but unbounded memory);
//   - trusted aggregator with bounded memory: Agarwal merges plus one
//     k-scaled noising, valid by Corollary 18 — error independent of l but
//     paying the k/eps noise, so it beats the untrusted pipeline once
//     l exceeds ~k.
func E6Merging(c Config) *Table {
	k := 16
	d := 64
	ls := []int{1, 4, 16, 64, 256}
	trials := 5
	if c.Quick {
		ls = []int{1, 8, 64}
		trials = 2
	}
	p := defaultParams
	t := &Table{
		ID:      "E6",
		Title:   "Victim-item error vs number of merged streams l (k=16, worst-case threshold input)",
		Columns: []string{"l", "untrusted-pmg", "trusted-reduced", "trusted-bounded(k/eps)", "untrusted/bounded"},
		Notes: []string{
			"untrusted loses ~threshold per merge (linear in l); trusted-reduced pays the per-stream reduction offset",
			"trusted-bounded pays a fixed k-scaled threshold once, so untrusted/bounded crosses 1 at l ≈ k — the paper's crossover",
		},
	}
	below := int(p.Threshold()) - 3 // victim count per stream, just below the threshold
	for _, l := range ls {
		streams := make([]stream.Stream, l)
		var all stream.Stream
		for i := range streams {
			var s stream.Stream
			for j := 0; j < below; j++ {
				s = append(s, 1)
			}
			// Light background traffic over 8 items keeps the sketches
			// non-trivial while staying under k distinct items, so merging
			// itself stays exact and the privacy error is isolated.
			for j := 0; j < 100; j++ {
				s = append(s, stream.Item(2+j%8))
			}
			streams[i] = s
			all = append(all, s...)
		}
		f := hist.Exact(all)
		victim := stream.Item(1)

		var eUntrusted, eTrustedRed, eTrustedBnd float64
		for trial := 0; trial < trials; trial++ {
			seed := c.Seed + uint64(6000*l+trial)

			relU, err := merge.UntrustedAggregate(streams, k, uint64(d), p, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			eUntrusted += math.Abs(float64(f[victim]) - relU[victim])

			var reduced []map[stream.Item]float64
			var summaries []*merge.Summary
			for _, s := range streams {
				sk := mg.New(k, uint64(d))
				sk.Process(s)
				reduced = append(reduced, puredp.Reduce(sk).Counts)
				sum, err := merge.FromCounters(k, uint64(d), sk.Counters())
				if err != nil {
					panic(err)
				}
				summaries = append(summaries, sum)
			}
			relT, err := merge.TrustedAggregateLaplace(reduced, p.Eps, p.Delta, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			eTrustedRed += math.Abs(float64(f[victim]) - relT[victim])

			relB, err := merge.TrustedAggregateBounded(summaries, p.Eps, p.Delta, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			eTrustedBnd += math.Abs(float64(f[victim]) - relB[victim])
		}
		ft := float64(trials)
		eUntrusted /= ft
		eTrustedRed /= ft
		eTrustedBnd /= ft
		ratio := math.Inf(1)
		if eTrustedBnd > 0 {
			ratio = eUntrusted / eTrustedBnd
		}
		t.AddRow(l, eUntrusted, eTrustedRed, eTrustedBnd, ratio)
	}
	return t
}

// E7UserLevel reproduces the Section 8 comparison (Theorem 2 / Theorem 30):
// releasing user-set streams via flattening + group-privacy-scaled PMG pays
// noise linear in m, while PAMG + the Gaussian Sparse Histogram Mechanism
// pays sqrt(k)·log noise independent of m.
func E7UserLevel(c Config) *Table {
	k := 128
	d := 2000
	users := 20000
	ms := []int{1, 2, 4, 8, 16, 32}
	trials := 3
	if c.Quick {
		k, users, trials = 64, 4000, 2
		ms = []int{1, 4, 8}
	}
	p := core.Params{Eps: 1, Delta: 1e-6}
	t := &Table{
		ID:      "E7",
		Title:   "User-level max error vs set size m (k=128, eps=1, delta=1e-6)",
		Columns: []string{"m", "flatten+pmg(eps/m)", "pamg+gshm", "pmg-noise-scale(m/eps)", "gshm-tau"},
		Notes: []string{
			"the pmg column grows with m (group privacy scales eps by 1/m); pamg+gshm stays flat",
		},
	}
	for _, m := range ms {
		ss := workload.UserSets(users, d, m, 1.1, c.Seed+uint64(70+m))
		f := hist.ExactSets(ss)

		cfg, err := gshm.Calibrate(p.Eps, p.Delta, k)
		if err != nil {
			panic(err)
		}
		pa := pamg.New(k)
		pa.Process(ss)
		counters := pa.Counters()
		var ePMG, eGSHM float64
		for trial := 0; trial < trials; trial++ {
			seed := c.Seed + uint64(7000*m+trial)
			relP, err := core.ReleaseUserLevel(ss, k, uint64(d), m, p, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			ePMG += hist.MaxError(relP, f)
			eGSHM += hist.MaxError(gshm.Release(counters, cfg, noise.NewSource(seed)), f)
		}
		scaled, _ := core.UserLevelParams(p, m)
		t.AddRow(m, ePMG/float64(trials), eGSHM/float64(trials), 1/scaled.Eps, cfg.Tau)
	}
	return t
}
