package experiment

import (
	"fmt"

	"dpmg/internal/baseline"
	"dpmg/internal/core"
	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/workload"
)

// E13SkewRobustness sweeps the workload skew: the paper's guarantees are
// worst-case (any stream), so the PMG advantage over Chan et al. must
// persist from near-uniform (s=0.6) to heavily skewed (s=1.5) streams.
// Reported: top-32 recall and total max error for both mechanisms.
func E13SkewRobustness(c Config) *Table {
	n, d, k := 1_000_000, 50_000, 512
	skews := []float64{0.6, 0.8, 1.0, 1.2, 1.5}
	trials := 3
	if c.Quick {
		n, trials = 100_000, 2
		skews = []float64{0.8, 1.2}
	}
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("Robustness to workload skew (Zipf exponent sweep, k=%d, eps=1)", k),
		Columns: []string{"zipf-s", "pmg-recall@32", "chan-recall@32", "pmg-max-err", "chan-max-err"},
		Notes: []string{
			"flat streams have no recoverable heavy hitters for anyone; the pmg/chan gap persists at every skew",
		},
	}
	for _, s := range skews {
		str := workload.Zipf(n, d, s, c.Seed+13)
		f := hist.Exact(str)
		sk := mg.New(k, uint64(d))
		sk.Process(str)
		std := mg.NewStandard(k)
		std.Process(str)
		var rP, rC, eP, eC float64
		for trial := 0; trial < trials; trial++ {
			seed := c.Seed + uint64(13000+trial) + uint64(s*100)
			rel, err := core.Release(sk, defaultParams, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			rP += hist.RecallAtK(rel, f, 32)
			eP += hist.MaxError(rel, f)
			relC, err := baseline.ChanApprox(std, defaultParams.Eps, defaultParams.Delta, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			rC += hist.RecallAtK(relC, f, 32)
			eC += hist.MaxError(relC, f)
		}
		ft := float64(trials)
		t.AddRow(s, rP/ft, rC/ft, eP/ft, eC/ft)
	}
	return t
}

// E14EpsilonSweep sweeps the privacy budget: the PMG noise error must scale
// as 1/eps (Lemma 13) while the sketch error term stays fixed, and the
// Chan et al. error must scale as k/eps. Measured against the exact
// histogram at k=512.
func E14EpsilonSweep(c Config) *Table {
	n, d, k := 1_000_000, 50_000, 512
	epss := []float64{0.1, 0.25, 0.5, 1, 2, 4}
	trials := 5
	if c.Quick {
		n, trials = 100_000, 2
		epss = []float64{0.25, 1, 4}
	}
	t := &Table{
		ID:      "E14",
		Title:   fmt.Sprintf("Error vs privacy budget eps (k=%d, delta=1e-6)", k),
		Columns: []string{"eps", "pmg-noise-err", "pmg-total-err", "chan-total-err", "threshold"},
		Notes: []string{
			"pmg noise scales ~1/eps; once it is below the sketch term n/(k+1) more budget stops helping",
		},
	}
	str := workload.Zipf(n, d, 1.05, c.Seed+14)
	f := hist.Exact(str)
	sk := mg.New(k, uint64(d))
	sk.Process(str)
	std := mg.NewStandard(k)
	std.Process(str)
	counters := sk.RealCounters()
	for _, eps := range epss {
		p := core.Params{Eps: eps, Delta: 1e-6}
		var nErr, tErr, cErr float64
		for trial := 0; trial < trials; trial++ {
			seed := c.Seed + uint64(14000+trial) + uint64(eps*1000)
			rel, err := core.Release(sk, p, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			nErr += noiseError(rel, counters)
			tErr += hist.MaxError(rel, f)
			relC, err := baseline.ChanApprox(std, p.Eps, p.Delta, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			cErr += hist.MaxError(relC, f)
		}
		ft := float64(trials)
		t.AddRow(eps, nErr/ft, tErr/ft, cErr/ft, p.Threshold())
	}
	return t
}
