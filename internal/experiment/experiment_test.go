package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Quick: true, Seed: 1}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs = %v want %v", ids, want)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e1"); !ok {
		t.Error("lowercase lookup failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("bogus ID found")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}, Notes: []string{"n1"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 123456.0)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"=== X: demo ===", "a", "bb", "2.50", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tab.CSV(&buf)
	if !strings.HasPrefix(buf.String(), "a,bb\n1,2.50\n") {
		t.Errorf("csv = %q", buf.String())
	}
}

// Each experiment must run in quick mode and produce a plausible table.
func runQuick(t *testing.T, id string, minRows int) *Table {
	t.Helper()
	r, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tab := r(quick)
	if tab.ID != id {
		t.Fatalf("table ID %q want %q", tab.ID, id)
	}
	if len(tab.Rows) < minRows {
		t.Fatalf("%s produced %d rows, want >= %d", id, len(tab.Rows), minRows)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s: row width %d vs %d columns", id, len(row), len(tab.Columns))
		}
	}
	return tab
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestE1QuickShape(t *testing.T) {
	tab := runQuick(t, "E1", 3)
	// Noise error must not scale with k: last-k error within 4x of first-k.
	first := parseF(t, tab.Rows[0][1])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if last > 4*first+20 {
		t.Errorf("PMG noise error grew with k: %v -> %v", first, last)
	}
}

func TestE2QuickShape(t *testing.T) {
	tab := runQuick(t, "E2", 3)
	// At the largest k, Chan must be much worse than PMG.
	lastRow := tab.Rows[len(tab.Rows)-1]
	pmg := parseF(t, lastRow[1])
	chanA := parseF(t, lastRow[2])
	if chanA < 3*pmg {
		t.Errorf("at large k expected chan >> pmg, got pmg=%v chan=%v", pmg, chanA)
	}
}

func TestE3QuickShape(t *testing.T) {
	runQuick(t, "E3", 2)
}

func TestE4QuickShape(t *testing.T) {
	tab := runQuick(t, "E4", 2)
	for _, row := range tab.Rows {
		if ratio := parseF(t, row[3]); ratio < 2 {
			t.Errorf("d=%s: chan-pure/reduced ratio %v, want >= 2 (k=64 noise gap)", row[0], ratio)
		}
	}
}

func TestE5QuickShape(t *testing.T) {
	tab := runQuick(t, "E5", 8)
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	// The proved bounds must hold in measurement.
	checksLE := map[string]float64{
		"mg-l1":       8,
		"mg-key-diff": 2,
		"reduced-l1":  2,
		"merged-linf": 1,
		"merged-l1":   8,
		"pamg-linf":   1,
	}
	for name, bound := range checksLE {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		if v := parseF(t, row[1]); v > bound {
			t.Errorf("%s measured %v > bound %v", name, v, bound)
		}
	}
	if v := parseF(t, byName["flat-mg-counter-gap"][1]); v != 4 {
		t.Errorf("Lemma 25 gap = %v, want m = 4", v)
	}
}

func TestE6QuickShape(t *testing.T) {
	tab := runQuick(t, "E6", 3)
	// Untrusted error must grow substantially with l, and by the largest l
	// (64 in quick mode, ≈ 4k) the bounded trusted pipeline must have
	// crossed below it — the paper's Section 7 crossover.
	u1 := parseF(t, tab.Rows[0][1])
	last := tab.Rows[len(tab.Rows)-1]
	uL := parseF(t, last[1])
	if uL < 4*u1 {
		t.Errorf("untrusted error should grow with l: %v -> %v", u1, uL)
	}
	bL := parseF(t, last[3])
	if bL > uL/2 {
		t.Errorf("expected crossover by l=%s: untrusted %v vs bounded %v", last[0], uL, bL)
	}
}

func TestE7QuickShape(t *testing.T) {
	tab := runQuick(t, "E7", 3)
	// PMG error must grow with m; GSHM must stay comparatively flat.
	p1 := parseF(t, tab.Rows[0][1])
	pL := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if pL < 2*p1 {
		t.Errorf("group-privacy PMG error should grow with m: %v -> %v", p1, pL)
	}
	g1 := parseF(t, tab.Rows[0][2])
	gL := parseF(t, tab.Rows[len(tab.Rows)-1][2])
	if gL > 4*g1+100 {
		t.Errorf("PAMG+GSHM error should stay flat: %v -> %v", g1, gL)
	}
}

func TestE8QuickShape(t *testing.T) {
	tab := runQuick(t, "E8", 3)
	for _, row := range tab.Rows {
		if row[5] != "true" {
			t.Errorf("MSE bound violated for %s: %v", row[0], row)
		}
	}
}

func TestE9QuickShape(t *testing.T) {
	tab := runQuick(t, "E9", 4)
	for _, row := range tab.Rows {
		sound := row[4] == "true"
		isBohler := strings.HasPrefix(row[0], "bohler")
		if isBohler && sound {
			t.Errorf("audit failed to flag %s k=%s (lower bound %s)", row[0], row[1], row[3])
		}
		if !isBohler && !sound {
			t.Errorf("audit flagged sound mechanism %s (lower bound %s)", row[0], row[3])
		}
	}
}

func TestE10QuickShape(t *testing.T) {
	tab := runQuick(t, "E10", 7) // includes the mg-batch-* ingest rows
	for _, row := range tab.Rows {
		if ns := parseF(t, row[1]); ns <= 0 || ns > 1e7 {
			t.Errorf("implausible ns/op for %s: %v", row[0], ns)
		}
	}
}

func TestE11QuickShape(t *testing.T) {
	tab := runQuick(t, "E11", 3)
	// At the largest T the dyadic strategy must beat uniform, measured and
	// predicted.
	last := tab.Rows[len(tab.Rows)-1]
	if u, d := parseF(t, last[1]), parseF(t, last[2]); d >= u {
		t.Errorf("T=%s: dyadic %v should beat uniform %v", last[0], d, u)
	}
	if up, dp := parseF(t, last[3]), parseF(t, last[4]); dp >= up {
		t.Errorf("T=%s: predicted dyadic %v should beat uniform %v", last[0], dp, up)
	}
}

func TestE12QuickShape(t *testing.T) {
	tab := runQuick(t, "E12", 3)
	for _, row := range tab.Rows {
		holds := row[4] == "true"
		independent := row[1] == "true"
		if independent && !holds {
			t.Errorf("stream-independent policy %s violated Lemma 8: %v", row[0], row)
		}
		// The quick trial count may miss the rare oldest-zero violations, so
		// only the full run asserts the break (see mg.TestOldestZeroBreaksLemma8).
	}
}

func TestE13QuickShape(t *testing.T) {
	tab := runQuick(t, "E13", 2)
	for _, row := range tab.Rows {
		pmgRecall := parseF(t, row[1])
		chanRecall := parseF(t, row[2])
		if pmgRecall < chanRecall-1e-9 {
			t.Errorf("s=%s: pmg recall %v below chan %v", row[0], pmgRecall, chanRecall)
		}
		if parseF(t, row[3]) > parseF(t, row[4]) {
			t.Errorf("s=%s: pmg error exceeds chan", row[0])
		}
	}
}

func TestE15QuickShape(t *testing.T) {
	tab := runQuick(t, "E15", 2)
	for _, row := range tab.Rows {
		pmgErr := parseF(t, row[1])
		treeErr := parseF(t, row[2])
		if pmgErr > treeErr {
			t.Errorf("log2(d)=%s: pmg error %v should beat tree %v", row[0], pmgErr, treeErr)
		}
	}
	// PMG error must be d-oblivious: last row within 2x of first.
	first := parseF(t, tab.Rows[0][1])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if last > 2*first+50 {
		t.Errorf("pmg error grew with d: %v -> %v", first, last)
	}
}

func TestE16QuickShape(t *testing.T) {
	tab := runQuick(t, "E16", 3)
	exact := parseF(t, tab.Rows[0][1])
	if exact < 0.9 {
		t.Errorf("exact trend recall %v, want ~1 (evaluation harness broken?)", exact)
	}
	for _, row := range tab.Rows[1:] {
		if r := parseF(t, row[1]); r < 0.5 {
			t.Errorf("%s trend recall %v, want >= 0.5", row[0], r)
		}
		if r := parseF(t, row[1]); r > exact+1e-9 {
			t.Errorf("%s recall %v exceeds exact upper bound %v", row[0], r, exact)
		}
	}
}

func TestE14QuickShape(t *testing.T) {
	tab := runQuick(t, "E14", 3)
	// PMG noise error must shrink as eps grows; the smallest-eps row must
	// have the largest noise.
	first := parseF(t, tab.Rows[0][1])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if last >= first {
		t.Errorf("noise error did not shrink with eps: %v -> %v", first, last)
	}
}
