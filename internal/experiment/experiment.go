// Package experiment regenerates every experiment table defined in
// DESIGN.md (E1–E10). The paper is a theory contribution with no empirical
// evaluation section, so each "table" here is the empirical analogue of a
// theorem-level claim: measured error, sensitivity, privacy loss, or
// throughput against the stated bound, and measured comparisons against
// every baseline the paper discusses. EXPERIMENTS.md records the outcomes.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks stream lengths and trial counts so the full suite runs
	// in seconds (used by tests); the full-size runs back EXPERIMENTS.md.
	Quick bool
	// Seed makes every experiment deterministic.
	Seed uint64
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 10000 || v < 0.01 && v > -0.01 && v != 0:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes an aligned ASCII table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Runner is an experiment entry point.
type Runner func(Config) *Table

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"E1":  E1NoiseVsK,
	"E2":  E2Baselines,
	"E3":  E3Crossover,
	"E4":  E4PureDP,
	"E5":  E5Sensitivity,
	"E6":  E6Merging,
	"E7":  E7UserLevel,
	"E8":  E8MSE,
	"E9":  E9Audit,
	"E10": E10Throughput,
	"E11": E11Continual,
	"E12": E12EvictionAblation,
	"E13": E13SkewRobustness,
	"E14": E14EpsilonSweep,
	"E15": E15HugeUniverse,
	"E16": E16DriftMonitoring,
}

// Lookup returns the runner for an experiment ID.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[strings.ToUpper(id)]
	return r, ok
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}
