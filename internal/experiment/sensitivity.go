package experiment

import (
	"math"
	"math/rand/v2"

	"dpmg/internal/hist"
	"dpmg/internal/merge"
	"dpmg/internal/mg"
	"dpmg/internal/pamg"
	"dpmg/internal/puredp"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

// E5Sensitivity measures the sensitivity structure of every sketch in the
// paper over random and adversarial neighboring pairs, against the proved
// bound: Lemma 8 (MG: l1 <= k, <= 2 differing keys), Lemma 16 (reduced
// sketch: l1 < 2), Corollary 18 (merged: per-counter <= 1, l1 <= k),
// Lemma 27 (PAMG: per-counter <= 1, l2 <= sqrt(k)), and Lemma 25 (flattened
// MG on user sets: a single counter can differ by the full m).
func E5Sensitivity(c Config) *Table {
	trials := 2000
	if c.Quick {
		trials = 300
	}
	k := 8
	m := 4
	rng := rand.New(rand.NewPCG(c.Seed+5, 17))
	t := &Table{
		ID:      "E5",
		Title:   "Measured sensitivity of every sketch vs the proved bound (k=8, random+adversarial neighbor pairs)",
		Columns: []string{"quantity", "measured-max", "bound", "tight?", "source"},
		Notes: []string{
			"mg-l1 reaching k and pamg/merged reaching their bounds shows the analysis is tight",
			"flat-mg-counter-gap = m reproduces the Lemma 25 lower bound construction",
		},
	}

	var mgL1, mgKeys, redL1, mergedLinf, mergedL1, pamgLinf, pamgL2 float64
	for trial := 0; trial < trials; trial++ {
		d := uint64(2 + rng.IntN(8))
		n := 1 + rng.IntN(100)
		str := make(stream.Stream, n)
		for i := range str {
			str[i] = stream.Item(rng.IntN(int(d)) + 1)
		}
		idx := rng.IntN(n)

		a := mg.New(k, d)
		a.Process(str)
		b := mg.New(k, d)
		b.Process(str.RemoveAt(idx))
		mgL1 = math.Max(mgL1, hist.L1Distance(a.Counters(), b.Counters()))
		mgKeys = math.Max(mgKeys, float64(keyDiff(a.Counters(), b.Counters())))
		redL1 = math.Max(redL1, puredp.L1Sensitivity(puredp.Reduce(a), puredp.Reduce(b)))

		// Merged pair: merge both with a fresh random summary.
		other := make(stream.Stream, 1+rng.IntN(50))
		for i := range other {
			other[i] = stream.Item(rng.IntN(int(d)) + 1)
		}
		oSk := mg.New(k, d)
		oSk.Process(other)
		oSum, _ := merge.FromCounters(k, d, oSk.Counters())
		aSum, _ := merge.FromCounters(k, d, a.Counters())
		bSum, _ := merge.FromCounters(k, d, b.Counters())
		ma, _ := merge.Merge(aSum, oSum)
		mb, _ := merge.Merge(bSum, oSum)
		mergedLinf = math.Max(mergedLinf, hist.LInfDistance(ma.CountsMap(), mb.CountsMap()))
		mergedL1 = math.Max(mergedL1, hist.L1Distance(ma.CountsMap(), mb.CountsMap()))

		// PAMG pair on user sets.
		ss := randomSets(rng, 1+rng.IntN(40), int(d), 3)
		ui := rng.IntN(len(ss))
		pa := pamg.New(k)
		pa.Process(ss)
		pb := pamg.New(k)
		pb.Process(ss.RemoveAt(ui))
		pamgLinf = math.Max(pamgLinf, hist.LInfDistance(pa.Counters(), pb.Counters()))
		pamgL2 = math.Max(pamgL2, hist.L2Distance(pa.Counters(), pb.Counters()))
	}

	// Adversarial all-decrement pair drives mg-l1 to exactly k.
	var base stream.Stream
	for x := 1; x <= k; x++ {
		base = append(base, stream.Item(x))
	}
	withExtra := base.InsertAt(len(base), stream.Item(k+1))
	aa := mg.New(k, uint64(k+1))
	aa.Process(withExtra)
	bb := mg.New(k, uint64(k+1))
	bb.Process(base)
	mgL1 = math.Max(mgL1, hist.L1Distance(aa.Counters(), bb.Counters()))

	// Lemma 25 construction: flattened user-set MG with a counter gap of m.
	s25, s25p, victim := workload.Lemma25Streams(k, m, 20)
	fa := mg.New(k, uint64(k+2+m))
	fa.Process(s25.Flatten())
	fb := mg.New(k, uint64(k+2+m))
	fb.Process(s25p.Flatten())
	flatGap := math.Abs(float64(fa.Estimate(victim) - fb.Estimate(victim)))

	t.AddRow("mg-l1", mgL1, float64(k), mgL1 == float64(k), "Lemma 8 / [11]")
	t.AddRow("mg-key-diff", mgKeys, 2.0, mgKeys == 2, "Lemma 8")
	t.AddRow("reduced-l1", redL1, 2.0, redL1 > 1.5, "Lemma 16 (strict <2)")
	t.AddRow("merged-linf", mergedLinf, 1.0, mergedLinf == 1, "Cor 18")
	t.AddRow("merged-l1", mergedL1, float64(k), mergedL1 <= float64(k), "Cor 18")
	t.AddRow("pamg-linf", pamgLinf, 1.0, pamgLinf == 1, "Lemma 27")
	t.AddRow("pamg-l2", pamgL2, math.Sqrt(float64(k)), true, "Thm 2")
	t.AddRow("flat-mg-counter-gap", flatGap, float64(m), flatGap == float64(m), "Lemma 25 (lower bound)")
	return t
}

func keyDiff(a, b map[stream.Item]int64) int {
	n := 0
	for x := range a {
		if _, ok := b[x]; !ok {
			n++
		}
	}
	return n
}

func randomSets(rng *rand.Rand, users, d, maxM int) stream.SetStream {
	ss := make(stream.SetStream, users)
	for i := range ss {
		m := 1 + rng.IntN(maxM)
		if m > d {
			m = d
		}
		seen := map[stream.Item]struct{}{}
		var set []stream.Item
		for len(set) < m {
			x := stream.Item(rng.IntN(d) + 1)
			if _, dup := seen[x]; dup {
				continue
			}
			seen[x] = struct{}{}
			set = append(set, x)
		}
		ss[i] = set
	}
	return ss
}
