package experiment

import (
	"fmt"
	"time"

	"dpmg/internal/baseline"
	"dpmg/internal/core"
	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

// E15HugeUniverse demonstrates the practicality separation at universe
// sizes where any mechanism that iterates the universe (Chan et al.'s pure
// release, the Section 6 pure release) is infeasible: the paper's
// Algorithm 2 only ever touches the k stored counters, so it is oblivious
// to d, while the prefix-tree frequency-oracle route (Bassily et al. style)
// pays Theta(log d) in both noise and per-update work. Reported: wall time
// per release, update throughput, and max error against the exact
// histogram on a planted-heavy-hitter stream over universes up to 2^40.
func E15HugeUniverse(c Config) *Table {
	n := 1_000_000
	k := 256
	dBits := []int{16, 24, 32, 40}
	if c.Quick {
		n = 100_000
		dBits = []int{16, 32}
	}
	p := defaultParams
	t := &Table{
		ID:      "E15",
		Title:   fmt.Sprintf("Huge universes: PMG vs prefix-tree oracle (k=%d, n=%d, eps=1)", k, n),
		Columns: []string{"log2(d)", "pmg-max-err", "tree-max-err", "pmg-update-ns", "tree-update-ns", "pmg-release-ms", "tree-release-ms"},
		Notes: []string{
			"pmg cost and error are oblivious to d; the oracle route pays log d in noise, update work and memory",
			"universe-iterating baselines (chan-pure, Section 6 pure release) are simply infeasible at 2^40",
		},
	}
	for _, bitsD := range dBits {
		d := uint64(1) << uint(bitsD)
		// Planted heavy hitters spread across the universe plus uniform
		// background over a 2^20 window (sampling 2^40 uniformly would make
		// every item unique; heaviness is what matters).
		heavy := []stream.Item{
			5, stream.Item(d/3 + 1), stream.Item(d/2 + 9), stream.Item(d - 3),
		}
		str := make(stream.Stream, 0, n)
		window := 1 << 20
		if uint64(window) > d {
			window = int(d)
		}
		bg := workload.Zipf(n, window, 1.05, c.Seed+uint64(bitsD))
		for i := 0; i < n; i++ {
			if i%5 == 0 { // 20% of mass on 4 planted items
				str = append(str, heavy[i%len(heavy)])
			} else {
				str = append(str, bg[i])
			}
		}
		f := hist.Exact(str)

		sk := mg.New(k, d)
		start := time.Now()
		sk.Process(str)
		pmgUpdate := float64(time.Since(start).Nanoseconds()) / float64(n)
		start = time.Now()
		relP, err := core.Release(sk, p, noise.NewSource(c.Seed+1))
		if err != nil {
			panic(err)
		}
		pmgRel := time.Since(start)

		tree, err := baseline.NewHierarchical(d, 1.0/float64(k), p.Eps, c.Seed+2)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		tree.Process(str)
		treeUpdate := float64(time.Since(start).Nanoseconds()) / float64(n)
		start = time.Now()
		relT := tree.Release(k, 0.01, noise.NewSource(c.Seed+3))
		treeRel := time.Since(start)

		t.AddRow(bitsD,
			hist.MaxError(relP, f), hist.MaxError(relT, f),
			pmgUpdate, treeUpdate,
			float64(pmgRel.Microseconds())/1000, float64(treeRel.Microseconds())/1000,
		)
	}
	return t
}
