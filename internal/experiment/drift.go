package experiment

import (
	"fmt"

	"dpmg/internal/continual"
	"dpmg/internal/hist"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

// E16DriftMonitoring stresses the continual-observation extension with
// non-stationary data: the heavy-hitter set rotates through phases, and the
// analyst reads "trending now" from the difference of consecutive private
// snapshots. Reported per strategy: the mean recall of the current phase's
// heavy set in the top-h of the snapshot delta, against the non-private
// exact-delta upper bound. This is the workload for which per-epoch
// publication exists at all — a single end-of-stream release cannot show
// what is trending.
func E16DriftMonitoring(c Config) *Table {
	T := 32
	perEpoch := 8000
	d := 2000
	k := 128
	phases := 8
	h := 5
	eps, delta := 4.0, 1e-5
	if c.Quick {
		T, perEpoch = 16, 3000
		phases = 4
	}
	n := T * perEpoch
	data := workload.Drift(n, d, phases, h, 0.6, c.Seed+16)
	epochsPerPhase := T / phases

	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("Continual monitoring under drift: trending-recall@%d from snapshot deltas (T=%d, %d phases)", h, T, phases),
		Columns: []string{"strategy", "mean-trend-recall", "mean-delta-err(heavy)"},
		Notes: []string{
			"trend recall = fraction of the current phase's heavy set in the top-h of snapshot_t - snapshot_{t-1}",
			"exact is the non-private upper bound; deltas double the noise, so drift is the hard case for continual DP",
		},
	}

	phaseHeavy := func(epoch int) map[stream.Item]bool {
		p := epoch / epochsPerPhase
		if p >= phases {
			p = phases - 1
		}
		set := make(map[stream.Item]bool, h)
		for i := 1; i <= h; i++ {
			set[stream.Item(p*h+i)] = true
		}
		return set
	}

	evaluate := func(snaps []hist.Estimate) (recall, deltaErr float64) {
		var prev hist.Estimate = hist.Estimate{}
		count := 0
		for e, snap := range snaps {
			delta := make(hist.Estimate)
			for x, v := range snap {
				delta[x] = v - prev[x]
			}
			heavy := phaseHeavy(e)
			hits := 0
			for _, x := range hist.TopKEstimate(delta, h) {
				if heavy[x] {
					hits++
				}
			}
			recall += float64(hits) / float64(h)
			// Delta error on the true per-epoch count of the phase head.
			truthEpoch := hist.Exact(stream.Stream(dataSlice(data, e, perEpoch)))
			var worst float64
			for x := range heavy {
				if err := abs16(delta[x] - float64(truthEpoch[x])); err > worst {
					worst = err
				}
			}
			deltaErr += worst
			count++
			prev = snap
		}
		return recall / float64(count), deltaErr / float64(count)
	}

	// Exact (non-private) snapshots as the upper bound.
	exactSnaps := make([]hist.Estimate, T)
	acc := map[stream.Item]int64{}
	for e := 0; e < T; e++ {
		for _, x := range dataSlice(data, e, perEpoch) {
			acc[x]++
		}
		exactSnaps[e] = hist.FromCounts(acc)
	}
	r, de := evaluate(exactSnaps)
	t.AddRow("exact (non-private)", r, de)

	for _, s := range []struct {
		name     string
		strategy continual.Strategy
	}{
		{"uniform", continual.Uniform},
		{"dyadic", continual.Dyadic},
	} {
		m, err := continual.NewMonitor(continual.Options{
			K: k, Universe: uint64(d), Epochs: T,
			Eps: eps, Delta: delta, Strategy: s.strategy, Seed: c.Seed + 160,
		})
		if err != nil {
			panic(err)
		}
		snaps := make([]hist.Estimate, T)
		for e := 0; e < T; e++ {
			for _, x := range dataSlice(data, e, perEpoch) {
				m.Update(x)
			}
			snaps[e], err = m.EndEpoch()
			if err != nil {
				panic(err)
			}
		}
		r, de := evaluate(snaps)
		t.AddRow(s.name, r, de)
	}
	return t
}

func dataSlice(data stream.Stream, epoch, perEpoch int) stream.Stream {
	return data[epoch*perEpoch : (epoch+1)*perEpoch]
}

func abs16(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
