package experiment

import (
	"fmt"
	"time"

	"dpmg/internal/audit"
	"dpmg/internal/baseline"
	"dpmg/internal/cms"
	"dpmg/internal/core"
	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/pamg"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

// E9Audit empirically lower-bounds the privacy loss of each release
// mechanism on worst-case neighboring pairs (Lemma 8 case 2: all counters
// shifted by one). A sound mechanism must audit at or below its claimed
// eps; the Böhler–Kerschbaum mechanism as published audits far above it,
// demonstrating the paper's Section 1 critique.
func E9Audit(c Config) *Table {
	trials := 60000.0
	if c.Quick {
		trials = 8000
	}
	eps, delta := 1.0, 1e-4
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("Empirical privacy-loss lower bound at claimed eps=%.1f, delta=%.0e", eps, delta),
		Columns: []string{"mechanism", "k", "claimed-eps", "audited-eps-lower", "sound?"},
		Notes: []string{
			"audited-eps-lower is a high-confidence lower bound; sound mechanisms stay <= claimed eps (within statistical slack)",
			"bohler-as-published uses sensitivity-1 noise on a sensitivity-k sketch: its loss grows with k",
		},
	}
	p := core.Params{Eps: eps, Delta: delta}
	reps := 60

	shiftedPair := func(k int) (stream.Stream, stream.Stream) {
		var base stream.Stream
		for r := 0; r < reps; r++ {
			for x := 1; x <= k; x++ {
				base = append(base, stream.Item(x))
			}
		}
		return base.InsertAt(len(base), stream.Item(k+1)), base
	}
	items := func(k int) []stream.Item {
		out := make([]stream.Item, k)
		for i := range out {
			out[i] = stream.Item(i + 1)
		}
		return out
	}
	gridEvents := func(k int, joint bool) []audit.Event {
		var evs []audit.Event
		for _, thr := range audit.ThresholdGrid(float64(reps)-0.5, 2, 5) {
			if joint {
				evs = append(evs, audit.AllAtLeast(items(k), thr))
			}
			evs = append(evs, audit.ValueAtLeast(1, thr))
		}
		return evs
	}

	type mech struct {
		name  string
		k     int
		joint bool
		build func(sA, sB stream.Stream, k int) (audit.Mechanism, audit.Mechanism)
	}
	paperMech := func(sA, sB stream.Stream, k int) (audit.Mechanism, audit.Mechanism) {
		a := mg.New(k, uint64(k+1))
		a.Process(sA)
		b := mg.New(k, uint64(k+1))
		b.Process(sB)
		mk := func(sk *mg.Sketch) audit.Mechanism {
			return func(src noise.Source) hist.Estimate {
				rel, err := core.Release(sk, p, src)
				if err != nil {
					panic(err)
				}
				return rel
			}
		}
		return mk(a), mk(b)
	}
	geoMech := func(sA, sB stream.Stream, k int) (audit.Mechanism, audit.Mechanism) {
		a := mg.New(k, uint64(k+1))
		a.Process(sA)
		b := mg.New(k, uint64(k+1))
		b.Process(sB)
		mk := func(sk *mg.Sketch) audit.Mechanism {
			return func(src noise.Source) hist.Estimate {
				rel, err := core.ReleaseGeometric(sk, p, src)
				if err != nil {
					panic(err)
				}
				return rel
			}
		}
		return mk(a), mk(b)
	}
	bohlerMech := func(sA, sB stream.Stream, k int) (audit.Mechanism, audit.Mechanism) {
		a := mg.NewStandard(k)
		a.Process(sA)
		b := mg.NewStandard(k)
		b.Process(sB)
		thresh := 1 + 2*noise.LaplaceQuantile(1/eps, delta)
		mk := func(sk *mg.StandardSketch) audit.Mechanism {
			return func(src noise.Source) hist.Estimate {
				out := make(hist.Estimate)
				for _, x := range sk.SortedKeys() {
					if v := float64(sk.Estimate(x)) + noise.Laplace(src, 1/eps); v >= thresh {
						out[x] = v
					}
				}
				return out
			}
		}
		return mk(a), mk(b)
	}

	chanMech := func(sA, sB stream.Stream, k int) (audit.Mechanism, audit.Mechanism) {
		a := mg.NewStandard(k)
		a.Process(sA)
		b := mg.NewStandard(k)
		b.Process(sB)
		mk := func(sk *mg.StandardSketch) audit.Mechanism {
			return func(src noise.Source) hist.Estimate {
				rel, err := baseline.ChanApprox(sk, eps, delta, src)
				if err != nil {
					panic(err)
				}
				return rel
			}
		}
		return mk(a), mk(b)
	}

	mechs := []mech{
		{"pmg (Alg 2)", 8, true, paperMech},
		{"pmg-geometric (5.2)", 8, true, geoMech},
		{"chan-approx (corrected)", 8, true, chanMech},
		{"bohler-as-published", 4, true, bohlerMech},
		{"bohler-as-published", 12, true, bohlerMech},
	}
	for i, m := range mechs {
		sA, sB := shiftedPair(m.k)
		mA, mB := m.build(sA, sB, m.k)
		res := audit.Run(mA, mB, gridEvents(m.k, m.joint), audit.Options{
			Trials: trials, Delta: delta, Seed: c.Seed + uint64(9000+i),
		})
		t.AddRow(m.name, m.k, eps, res.EpsLower, res.EpsLower <= eps*1.15)
	}
	return t
}

// E10Throughput measures the streaming cost of every sketch: the paper
// argues its mechanism is "simple and likely to be practical", and the
// sketch updates are the hot path.
func E10Throughput(c Config) *Table {
	n := 1 << 20
	if c.Quick {
		n = 1 << 17
	}
	k := 256
	d := 1 << 16
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("Streaming throughput (k=%d, d=%d, n=%d)", k, d, n),
		Columns: []string{"operation", "ns/op", "million-ops/sec"},
	}
	zipf := workload.Zipf(n, d, 1.05, c.Seed+10)
	adv := workload.Adversarial(n, k)

	timeIt := func(name string, ops int, fn func()) {
		start := time.Now()
		fn()
		el := time.Since(start)
		nsOp := float64(el.Nanoseconds()) / float64(ops)
		t.AddRow(name, nsOp, 1e3/nsOp)
	}

	sk := mg.New(k, uint64(d))
	timeIt("mg-update-zipf", n, func() { sk.Process(zipf) })
	sk2 := mg.New(k, uint64(d))
	timeIt("mg-update-adversarial", n, func() { sk2.Process(adv) })
	skb := mg.New(k, uint64(d))
	timeIt("mg-batch-zipf", n, func() { skb.UpdateBatch(zipf) })
	skb2 := mg.New(k, uint64(d))
	timeIt("mg-batch-adversarial", n, func() { skb2.UpdateBatch(adv) })
	std := mg.NewStandard(k)
	timeIt("standard-mg-update-zipf", n, func() { std.Process(zipf) })
	cm := cms.New(5, 4096, c.Seed)
	timeIt("count-min-update", n, func() {
		for _, x := range zipf {
			cm.Update(x)
		}
	})
	sets := workload.UserSets(n/8, d, 8, 1.05, c.Seed+11)
	pa := pamg.New(k)
	timeIt("pamg-user(m=8)", n/8, func() { pa.Process(sets) })

	relTrials := 2000
	if c.Quick {
		relTrials = 200
	}
	timeIt("pmg-release", relTrials, func() {
		for i := 0; i < relTrials; i++ {
			if _, err := core.Release(sk, defaultParams, noise.NewSource(uint64(i))); err != nil {
				panic(err)
			}
		}
	})
	return t
}
