package experiment

import (
	"fmt"
	"math"
	"math/bits"

	"dpmg/internal/baseline"
	"dpmg/internal/core"
	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/puredp"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

var defaultParams = core.Params{Eps: 1, Delta: 1e-6}

// E1NoiseVsK reproduces the headline claim (Theorems 1/14): the noise error
// of the PMG release is O(log(1/delta)/eps), independent of the sketch size
// k. For each k it reports the maximum observed |release - sketch| across
// trials for the paper-variant release, the Section 5.1 standard-sketch
// release, and the Section 5.2 geometric release, against the Lemma 13
// prediction.
func E1NoiseVsK(c Config) *Table {
	n, d := 1_000_000, 50_000
	ks := []int{8, 32, 128, 512, 2048}
	trials := 20
	if c.Quick {
		n, trials = 100_000, 5
		ks = []int{8, 64, 512}
	}
	str := workload.Zipf(n, d, 1.05, c.Seed+1)
	t := &Table{
		ID:      "E1",
		Title:   "PMG noise error vs sketch size k (eps=1, delta=1e-6)",
		Columns: []string{"k", "pmg-max-noise-err", "std-variant", "geometric", "lemma13-bound(b=.05)"},
		Notes: []string{
			"noise error = max |released - sketch counter| incl. threshold drops; constant in k",
			"the std variant pays the raised Section 5.1 threshold; geometric pays the 5.2 threshold",
		},
	}
	for _, k := range ks {
		sk := mg.New(k, uint64(d))
		sk.Process(str)
		std := mg.NewStandard(k)
		std.Process(str)
		var worstPMG, worstStd, worstGeo float64
		for trial := 0; trial < trials; trial++ {
			seed := c.Seed + uint64(1000*k+trial)
			rel, err := core.Release(sk, defaultParams, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			worstPMG = math.Max(worstPMG, noiseError(rel, sk.RealCounters()))
			relStd, err := core.ReleaseStandard(std, defaultParams, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			worstStd = math.Max(worstStd, noiseError(relStd, std.Counters()))
			relGeo, err := core.ReleaseGeometric(sk, defaultParams, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			worstGeo = math.Max(worstGeo, noiseError(relGeo, sk.RealCounters()))
		}
		down, _ := core.NoiseErrorBound(defaultParams, k, 0.05)
		t.AddRow(k, worstPMG, worstStd, worstGeo, down)
	}
	return t
}

// noiseError is the max |released value - sketch counter| over the sketch's
// stored real counters; a counter dropped by the threshold contributes its
// full value.
func noiseError(rel hist.Estimate, counters map[stream.Item]int64) float64 {
	worst := 0.0
	for x, cnt := range counters {
		v, ok := rel[x]
		if !ok {
			worst = math.Max(worst, float64(cnt))
			continue
		}
		worst = math.Max(worst, math.Abs(v-float64(cnt)))
	}
	return worst
}

// E2Baselines reproduces the Section 1/4 separation: Chan et al.'s noise
// scales linearly with k, the paper's does not. Total max error (sketch +
// privacy) against the exact histogram for each mechanism across k.
func E2Baselines(c Config) *Table {
	n, d := 1_000_000, 50_000
	ks := []int{8, 32, 128, 512, 2048}
	trials := 5
	if c.Quick {
		n, trials = 100_000, 2
		ks = []int{8, 64, 512}
	}
	str := workload.Zipf(n, d, 1.05, c.Seed+2)
	f := hist.Exact(str)
	t := &Table{
		ID:      "E2",
		Title:   "Total max error vs k: PMG vs Chan et al. vs frequency oracle (eps=1, delta=1e-6)",
		Columns: []string{"k", "pmg", "chan-approx", "chan-pure", "freq-oracle", "sketch-only"},
		Notes: []string{
			"pmg error falls with k (only the n/(k+1) term shrinks); chan error turns around and grows with k",
			"chan-approx == corrected Böhler–Kerschbaum; freq-oracle is memory-matched (2k words) and pays Theta(log d/eps) noise per estimate",
		},
	}
	for _, k := range ks {
		sk := mg.New(k, uint64(d))
		sk.Process(str)
		std := mg.NewStandard(k)
		std.Process(str)
		var ePMG, eChanA, eChanP, eFO float64
		for trial := 0; trial < trials; trial++ {
			seed := c.Seed + uint64(2000*k+trial)
			rel, err := core.Release(sk, defaultParams, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			ePMG += hist.MaxError(rel, f)
			relCA, err := baseline.ChanApprox(std, defaultParams.Eps, defaultParams.Delta, noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			eChanA += hist.MaxError(relCA, f)
			relCP, err := baseline.ChanPure(std, defaultParams.Eps, uint64(d), noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			eChanP += hist.MaxError(relCP, f)
			// Memory-fair oracle: the MG sketch uses 2k words, the oracle
			// depth ~ log2(d) rows, so give it width = 2k/depth cells.
			depth := bits.Len(uint(d))
			errFrac := 2.72 * float64(depth) / (2 * float64(k))
			fo, err := baseline.NewFrequencyOracle(uint64(d), errFrac, defaultParams.Eps, seed)
			if err != nil {
				panic(err)
			}
			fo.Process(str)
			eFO += hist.MaxError(fo.Release(k, uint64(d), noise.NewSource(seed)), f)
		}
		ft := float64(trials)
		sketchOnly := hist.MaxError(hist.FromCounts(sk.RealCounters()), f)
		t.AddRow(k, ePMG/ft, eChanA/ft, eChanP/ft, eFO/ft, sketchOnly)
	}
	return t
}

// E3Crossover reproduces the Section 1 claim that Chan et al. cannot get
// below Theta(sqrt(n·log(1/delta)/eps)) total error no matter the k, while
// PMG with a large enough k matches the non-streaming Korolova baseline up
// to a constant. For each n every mechanism gets its best k from a grid.
func E3Crossover(c Config) *Table {
	ns := []int{10_000, 100_000, 1_000_000, 10_000_000}
	ks := []int{16, 64, 256, 1024, 4096}
	trials := 3
	if c.Quick {
		ns = []int{10_000, 100_000}
		ks = []int{16, 64, 256}
		trials = 2
	}
	d := 100_000
	t := &Table{
		ID:      "E3",
		Title:   "Best achievable max error vs stream length n (each mechanism picks its best k)",
		Columns: []string{"n", "pmg", "pmg-k*", "chan", "chan-k*", "korolova", "sqrt(n·ln(1/δ))/ε"},
		Notes: []string{
			"chan tracks the sqrt(n) floor; pmg tracks the non-streaming korolova error",
		},
	}
	for _, n := range ns {
		str := workload.Zipf(n, d, 1.05, c.Seed+3)
		f := hist.Exact(str)
		bestPMG, bestKP := math.Inf(1), 0
		bestChan, bestKC := math.Inf(1), 0
		for _, k := range ks {
			sk := mg.New(k, uint64(d))
			sk.Process(str)
			std := mg.NewStandard(k)
			std.Process(str)
			var ep, ec float64
			for trial := 0; trial < trials; trial++ {
				seed := c.Seed + uint64(n+3000*k+trial)
				rel, err := core.Release(sk, defaultParams, noise.NewSource(seed))
				if err != nil {
					panic(err)
				}
				ep += hist.MaxError(rel, f)
				relC, err := baseline.ChanApprox(std, defaultParams.Eps, defaultParams.Delta, noise.NewSource(seed))
				if err != nil {
					panic(err)
				}
				ec += hist.MaxError(relC, f)
			}
			if ep /= float64(trials); ep < bestPMG {
				bestPMG, bestKP = ep, k
			}
			if ec /= float64(trials); ec < bestChan {
				bestChan, bestKC = ec, k
			}
		}
		var eKor float64
		for trial := 0; trial < trials; trial++ {
			rel, err := baseline.Korolova(f, defaultParams.Eps, defaultParams.Delta, noise.NewSource(c.Seed+uint64(n+trial)))
			if err != nil {
				panic(err)
			}
			eKor += hist.MaxError(rel, f)
		}
		floor := math.Sqrt(float64(n)*math.Log(1/defaultParams.Delta)) / defaultParams.Eps
		t.AddRow(n, bestPMG, bestKP, bestChan, bestKC, eKor/float64(trials), floor)
	}
	return t
}

// E4PureDP reproduces Section 6: after the Algorithm 3 sensitivity
// reduction, pure eps-DP needs only Laplace(2/eps) noise, so the error is
// n/(k+1) + O(log(d)/eps) versus Chan et al.'s O(k·log(d)/eps).
func E4PureDP(c Config) *Table {
	n := 1_000_000
	ds := []int{1_000, 10_000, 100_000}
	k := 64
	trials := 3
	if c.Quick {
		n, trials = 100_000, 2
		ds = []int{1_000, 10_000}
	}
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Pure eps-DP noise error vs universe size d (k=%d, eps=1)", k),
		Columns: []string{"d", "reduced+laplace2-noise", "chan-pure-noise(k/eps)", "ratio", "sketch+reduction-err"},
		Notes: []string{
			"noise error = max |released - (post-processed) sketch value|; both grow with log d",
			"the k/eps scale multiplies the chan noise by ~k/2; totals also carry the sketch error shown last",
		},
	}
	for _, d := range ds {
		str := workload.Zipf(n, d, 1.05, c.Seed+4)
		f := hist.Exact(str)
		sk := mg.New(k, uint64(d))
		sk.Process(str)
		std := mg.NewStandard(k)
		std.Process(str)
		red := puredp.Reduce(sk)
		redEst := red.ToEstimate()
		stdEst := hist.FromCounts(std.Counters())
		var ePure, eChan float64
		for trial := 0; trial < trials; trial++ {
			seed := c.Seed + uint64(4000*d+trial)
			rel, err := puredp.ReleasePure(red, defaultParams.Eps, uint64(d), noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			ePure += maxAbsDiff(rel, redEst)
			relC, err := baseline.ChanPure(std, defaultParams.Eps, uint64(d), noise.NewSource(seed))
			if err != nil {
				panic(err)
			}
			eChan += maxAbsDiff(relC, stdEst)
		}
		ePure /= float64(trials)
		eChan /= float64(trials)
		sketchErr := hist.MaxError(redEst, f)
		t.AddRow(d, ePure, eChan, eChan/ePure, sketchErr)
	}
	return t
}

// maxAbsDiff is the max |rel(x) - ref(x)| over the union of supports — the
// noise-plus-thresholding error of a release against its non-private input.
func maxAbsDiff(rel, ref hist.Estimate) float64 {
	worst := 0.0
	for x, v := range rel {
		worst = math.Max(worst, math.Abs(v-ref[x]))
	}
	for x, v := range ref {
		if _, ok := rel[x]; !ok {
			worst = math.Max(worst, math.Abs(v))
		}
	}
	return worst
}

// E8MSE verifies the Theorem 14 mean-squared-error bound
// E[(f̂(x)-f(x))²] <= 3·(1 + (2+2·ln(3/δ))/ε + n/(k+1))² on elements of
// three frequency classes.
func E8MSE(c Config) *Table {
	n, d, k := 200_000, 5_000, 64
	trials := 2000
	if c.Quick {
		n, trials = 50_000, 300
	}
	str := workload.Zipf(n, d, 1.2, c.Seed+8)
	f := hist.Exact(str)
	sk := mg.New(k, uint64(d))
	sk.Process(str)
	bound := core.MSEBound(defaultParams, k, int64(n))
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("Per-element MSE vs the Theorem 14 bound (k=%d, n=%d, %d trials)", k, n, trials),
		Columns: []string{"element-class", "item", "true-freq", "measured-mse", "bound", "ok"},
	}
	top := hist.TopK(f, k/2)
	classes := []struct {
		name string
		x    stream.Item
	}{
		{"heaviest", top[0]},
		{"mid-sketch", top[len(top)/2]},
		{"light", top[len(top)-1]},
	}
	for _, cl := range classes {
		var sum float64
		for trial := 0; trial < trials; trial++ {
			rel, err := core.Release(sk, defaultParams, noise.NewSource(c.Seed+uint64(8000+trial)))
			if err != nil {
				panic(err)
			}
			dv := rel[cl.x] - float64(f[cl.x])
			sum += dv * dv
		}
		mse := sum / float64(trials)
		t.AddRow(cl.name, cl.x, f[cl.x], mse, bound, mse <= bound)
	}
	return t
}
