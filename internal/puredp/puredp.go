// Package puredp implements Section 6 of the paper: a post-processing step
// (Algorithm 3) that reduces the l1-sensitivity of a Misra-Gries sketch from
// k to strictly less than 2 while adding at most n/(k+1) extra error
// (Lemmas 15 and 16), and the releases it enables — pure eps-DP with noise
// Laplace(2/eps) over the whole universe, and an (eps, delta) thresholded
// variant in the style of [3, Algorithm 9].
package puredp

import (
	"fmt"
	"sort"

	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/stream"
)

// Reduced is the output of the Algorithm 3 sensitivity reduction: at most k
// strictly positive real-valued counters with l1-sensitivity < 2.
type Reduced struct {
	K      int
	Gamma  float64 // the subtracted offset, sum(c)/(k+1)
	Counts map[stream.Item]float64
}

// Reduce runs Algorithm 3 on a paper-variant Misra-Gries sketch: compute
// gamma = (sum of counters)/(k+1), subtract it from every counter, and keep
// only counters that remain positive. Dummy keys never survive (their
// counters are zero). By Lemma 15 the reduced estimates still satisfy
// f̂(x) in [f(x) - n/(k+1), f(x)].
func Reduce(sk *mg.Sketch) *Reduced {
	return ReduceCounters(sk.Counters(), sk.K())
}

// ReduceCounters is Reduce on a raw Algorithm 1 counter snapshot (all k
// counters, dummy and zero keys included) — the form the unified release
// front-end hands mechanisms. Both entry points share this implementation
// so the gamma offset and the surviving key set are identical.
func ReduceCounters(counts map[stream.Item]int64, k int) *Reduced {
	var sum int64
	for _, c := range counts {
		sum += c
	}
	gamma := float64(sum) / float64(k+1)
	out := make(map[stream.Item]float64)
	for x, c := range counts {
		if v := float64(c) - gamma; v > 0 {
			out[x] = v
		}
	}
	return &Reduced{K: k, Gamma: gamma, Counts: out}
}

// Estimate returns the reduced frequency estimate of x (0 if absent).
func (r *Reduced) Estimate(x stream.Item) float64 { return r.Counts[x] }

// ToEstimate converts the reduced counters into a released-style table.
func (r *Reduced) ToEstimate() hist.Estimate {
	out := make(hist.Estimate, len(r.Counts))
	for x, v := range r.Counts {
		out[x] = v
	}
	return out
}

// ReleasePure releases the reduced sketch under pure eps-differential
// privacy: Laplace(2/eps) noise (the l1-sensitivity is < 2 by Lemma 16) is
// added to the count of every element of the universe [1, d] — zero for
// elements outside the sketch — and the k largest noisy counts are returned.
// The error satisfies n/(k+1) + O(log(d)/eps) with high probability.
//
// The run time is Theta(d); the paper points to [4, 11, 12] for sampling
// only the top noisy counts in sublinear time, which matters for universes
// far larger than the experiments here use.
func ReleasePure(r *Reduced, eps float64, d uint64, src noise.Source) (hist.Estimate, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("puredp: eps must be positive, got %v", eps)
	}
	if d == 0 {
		return nil, fmt.Errorf("puredp: universe size must be positive")
	}
	acc := hist.NewTopAccumulator(r.K)
	scale := 2 / eps
	for x := stream.Item(1); uint64(x) <= d; x++ {
		acc.Offer(x, r.Counts[x]+noise.Laplace(src, scale))
	}
	return acc.Estimate(), nil
}

// ApproxThreshold is the Section 6 threshold 4 + 2·ln(1/δ)/ε used by
// ReleaseApprox.
func ApproxThreshold(eps, delta float64) float64 {
	return 4 + 2*noise.LaplaceQuantile(1/eps, delta)
}

// ReleaseApprox releases the reduced sketch under (eps, delta)-DP without
// touching the whole universe, using the technique of [3, Algorithm 9] the
// paper cites: counters smaller than the l1-sensitivity (2) are
// probabilistically rounded — value v < 2 becomes 2 with probability v/2 and
// 0 otherwise — then Laplace(2/eps) noise is added to each surviving counter
// and noisy counts below 4 + 2·ln(1/δ)/ε are removed. Compared to Algorithm
// 2 this costs an extra n/(k+1) error (the reduction's offset), which is why
// the paper prefers Algorithm 2 under approximate DP.
func ReleaseApprox(r *Reduced, eps, delta float64, src noise.Source) (hist.Estimate, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("puredp: eps must be positive, got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("puredp: delta must be in (0,1), got %v", delta)
	}
	thresh := ApproxThreshold(eps, delta)
	scale := 2 / eps
	out := make(hist.Estimate)
	keys := make([]stream.Item, 0, len(r.Counts))
	for x := range r.Counts {
		keys = append(keys, x)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, x := range keys {
		v := r.Counts[x]
		if v < 2 {
			if src.Float64() < v/2 {
				v = 2
			} else {
				continue
			}
		}
		if noisy := v + noise.Laplace(src, scale); noisy >= thresh {
			out[x] = noisy
		}
	}
	return out, nil
}

// L1Sensitivity returns the l1 distance between two reduced counter tables
// viewed over the whole universe. Lemma 16 proves it is < 2 for reductions
// of sketches on neighboring streams; the experiments measure it.
func L1Sensitivity(a, b *Reduced) float64 {
	var sum float64
	for x, va := range a.Counts {
		sum += abs(va - b.Counts[x])
	}
	for x, vb := range b.Counts {
		if _, ok := a.Counts[x]; !ok {
			sum += abs(vb)
		}
	}
	return sum
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
