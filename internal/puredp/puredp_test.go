package puredp

import (
	"math"
	"math/rand/v2"
	"testing"

	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

func sketchOf(k int, d uint64, str stream.Stream) *mg.Sketch {
	sk := mg.New(k, d)
	sk.Process(str)
	return sk
}

func TestLemma15ErrorBound(t *testing.T) {
	// Reduced estimates stay within [f(x) - n/(k+1), f(x)].
	cases := []struct {
		k   int
		d   uint64
		str stream.Stream
	}{
		{16, 1000, workload.Zipf(20000, 1000, 1.1, 1)},
		{4, 10, workload.Adversarial(1000, 4)},
		{8, 50, workload.Uniform(5000, 50, 2)},
	}
	for _, c := range cases {
		r := Reduce(sketchOf(c.k, c.d, c.str))
		f := hist.Exact(c.str)
		slack := float64(len(c.str)) / float64(c.k+1)
		for x := stream.Item(1); uint64(x) <= c.d; x++ {
			est := r.Estimate(x)
			if est > float64(f[x])+1e-9 {
				t.Fatalf("item %d: reduced estimate %v > true %d", x, est, f[x])
			}
			if est < float64(f[x])-slack-1e-9 {
				t.Fatalf("item %d: reduced estimate %v < %d - %v", x, est, f[x], slack)
			}
		}
	}
}

func TestGammaFormula(t *testing.T) {
	// Lemma 15's proof: gamma = n/(k+1) - alpha where alpha is the number of
	// decrement steps.
	k := 8
	str := workload.Zipf(5000, 100, 1.0, 3)
	sk := sketchOf(k, 100, str)
	r := Reduce(sk)
	want := float64(len(str))/float64(k+1) - float64(sk.Decrements())
	if math.Abs(r.Gamma-want) > 1e-9 {
		t.Errorf("gamma = %v want %v", r.Gamma, want)
	}
}

func TestReducePositiveCountsOnly(t *testing.T) {
	r := Reduce(sketchOf(8, 100, workload.Uniform(500, 100, 4)))
	for x, v := range r.Counts {
		if v <= 0 {
			t.Fatalf("item %d: non-positive reduced count %v", x, v)
		}
		if uint64(x) > 100 {
			t.Fatalf("dummy key %d survived reduction", x)
		}
	}
}

func TestLemma16SensitivityBelowTwo(t *testing.T) {
	// The headline claim of Section 6: ||ĉ - ĉ'||_1 < 2 for neighbors.
	rng := rand.New(rand.NewPCG(11, 12))
	trials := 2000
	if testing.Short() {
		trials = 200
	}
	worst := 0.0
	for trial := 0; trial < trials; trial++ {
		k := 1 + rng.IntN(6)
		d := uint64(2 + rng.IntN(8))
		n := 1 + rng.IntN(80)
		str := make(stream.Stream, n)
		for i := range str {
			str[i] = stream.Item(rng.IntN(int(d)) + 1)
		}
		a := Reduce(sketchOf(k, d, str))
		b := Reduce(sketchOf(k, d, str.RemoveAt(rng.IntN(n))))
		l1 := L1Sensitivity(a, b)
		if l1 >= 2 {
			t.Fatalf("trial %d: reduced l1 sensitivity %v >= 2 (k=%d)\nstream=%v", trial, l1, k, str)
		}
		if l1 > worst {
			worst = l1
		}
	}
	if worst == 0 {
		t.Error("sensitivity never exercised")
	}
	t.Logf("worst observed reduced sensitivity: %v", worst)
}

func TestReleasePureTopK(t *testing.T) {
	k := 8
	d := uint64(200)
	str := workload.HeavyTail(50000, int(d), 4, 0.8, 5)
	r := Reduce(sketchOf(k, d, str))
	rel, err := ReleasePure(r, 1.0, d, noise.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != k {
		t.Fatalf("released %d items, want k=%d", len(rel), k)
	}
	// The four designated heavy items must be recovered (their counts are
	// ~10000 vs noise scale 2).
	f := hist.Exact(str)
	for _, x := range hist.TopK(f, 4) {
		if _, ok := rel[x]; !ok {
			t.Errorf("heavy item %d missed by pure-DP release", x)
		}
	}
}

func TestReleasePureErrorBound(t *testing.T) {
	// Total error should be within n/(k+1) + c·log(d)/eps for a modest c,
	// with high probability. Use c = 6 (2/eps scale, log d quantile, both
	// tails, slack).
	k := 32
	d := uint64(2000)
	n := 100000
	str := workload.Zipf(n, int(d), 1.2, 6)
	r := Reduce(sketchOf(k, d, str))
	f := hist.Exact(str)
	eps := 1.0
	bound := float64(n)/float64(k+1) + 6*math.Log(float64(d))/eps
	fails := 0
	for seed := uint64(0); seed < 50; seed++ {
		rel, err := ReleasePure(r, eps, d, noise.NewSource(seed))
		if err != nil {
			t.Fatal(err)
		}
		if hist.MaxError(rel, f) > bound {
			fails++
		}
	}
	if fails > 5 {
		t.Errorf("pure-DP error bound violated in %d/50 runs (bound %v)", fails, bound)
	}
}

func TestReleasePureValidation(t *testing.T) {
	r := Reduce(sketchOf(2, 10, stream.Stream{1, 2}))
	if _, err := ReleasePure(r, 0, 10, noise.NewSource(1)); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := ReleasePure(r, 1, 0, noise.NewSource(1)); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestReleaseApprox(t *testing.T) {
	k := 16
	d := uint64(500)
	str := workload.HeavyTail(50000, int(d), 3, 0.8, 7)
	r := Reduce(sketchOf(k, d, str))
	eps, delta := 1.0, 1e-6
	rel, err := ReleaseApprox(r, eps, delta, noise.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	thresh := ApproxThreshold(eps, delta)
	for x, v := range rel {
		if v < thresh {
			t.Fatalf("item %d below threshold: %v < %v", x, v, thresh)
		}
		if _, ok := r.Counts[x]; !ok {
			t.Fatalf("item %d not in reduced support", x)
		}
	}
	f := hist.Exact(str)
	for _, x := range hist.TopK(f, 3) {
		if _, ok := rel[x]; !ok {
			t.Errorf("heavy item %d missed", x)
		}
	}
}

func TestReleaseApproxSmallCountsRounding(t *testing.T) {
	// A reduced counter v < 2 must survive with probability about
	// v/2 * Pr[2 + Lap >= thresh], in particular sometimes 0 and never with
	// released value drawn from the unrounded v.
	r := &Reduced{K: 4, Counts: map[stream.Item]float64{1: 0.5}}
	eps, delta := 2.0, 0.2 // low threshold so survivors are observable
	kept := 0
	for seed := uint64(0); seed < 4000; seed++ {
		rel, err := ReleaseApprox(r, eps, delta, noise.NewSource(seed))
		if err != nil {
			t.Fatal(err)
		}
		if len(rel) > 0 {
			kept++
		}
	}
	// Survival prob = 0.25 * Pr[2+Lap(1) >= 4+ln(5)] ≈ 0.25 * small.
	frac := float64(kept) / 4000
	if frac > 0.25 {
		t.Errorf("small count survived too often: %v", frac)
	}
}

func TestReleaseApproxValidation(t *testing.T) {
	r := &Reduced{K: 2, Counts: map[stream.Item]float64{}}
	if _, err := ReleaseApprox(r, 0, 0.1, noise.NewSource(1)); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := ReleaseApprox(r, 1, 0, noise.NewSource(1)); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := ReleaseApprox(r, 1, 1, noise.NewSource(1)); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestToEstimate(t *testing.T) {
	r := &Reduced{K: 2, Counts: map[stream.Item]float64{3: 1.5}}
	e := r.ToEstimate()
	if e[3] != 1.5 || len(e) != 1 {
		t.Fatalf("ToEstimate = %v", e)
	}
}
