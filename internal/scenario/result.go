package scenario

import (
	"sort"
	"time"

	"dpmg/internal/stream"
)

// Check is one named pass/fail assertion of a run.
type Check struct {
	// Name identifies the assertion ("lemma8-envelope", "budget-ledger", …).
	Name string `json:"name"`
	// Pass reports whether the assertion held.
	Pass bool `json:"pass"`
	// Detail explains the outcome (the witness on failure, a summary on
	// success).
	Detail string `json:"detail,omitempty"`
}

// FrontierPoint is one (ε, error) point of the accuracy/privacy frontier:
// the observed release error of every stream at one grid ε, next to the
// mechanism's calibrated noise scale and the Lemma 8 envelope it rode on.
type FrontierPoint struct {
	// Eps is the grid ε.
	Eps float64 `json:"eps"`
	// Delta is the per-release δ.
	Delta float64 `json:"delta"`
	// Releases counts releases issued at this ε across streams.
	Releases int `json:"releases"`
	// MaxAbsErr is the worst |released − true| over all probed items.
	MaxAbsErr float64 `json:"max_abs_err"`
	// MeanAbsErr is the mean |released − true| over all probed items.
	MeanAbsErr float64 `json:"mean_abs_err"`
	// NoiseScale is the mechanism's calibrated scale (max over streams).
	NoiseScale float64 `json:"noise_scale"`
	// Envelope is the largest N/(k+1) sketch-error bound among streams.
	Envelope float64 `json:"envelope"`
	// ProbeCoverage is the fraction of probed heavy items present in the
	// released top-k documents (reported, not asserted: a tiny tier can
	// legitimately noise a marginal item out of the cut).
	ProbeCoverage float64 `json:"probe_coverage"`
}

// Result is one scenario run's machine-readable frontier row — the JSON
// object emitted into SCENARIO_core.json.
type Result struct {
	// Scenario is the spec name.
	Scenario string `json:"scenario"`
	// Tier is the size class the run used.
	Tier string `json:"tier"`
	// Cluster reports the 1-root/2-edge topology.
	Cluster bool `json:"cluster,omitempty"`
	// Streams is the tenant count.
	Streams int `json:"streams"`
	// K is the largest summary size among streams.
	K int `json:"k"`
	// Universe is the largest universe among streams.
	Universe uint64 `json:"universe"`
	// Items is the total item count ingested.
	Items int64 `json:"items"`

	// IngestSeconds is the wall-clock span of the ingest phase.
	IngestSeconds float64 `json:"ingest_seconds"`
	// ItemsPerSec is the achieved end-to-end ingest throughput.
	ItemsPerSec float64 `json:"items_per_s"`
	// P50IngestMicros is the median accepted-batch round trip.
	P50IngestMicros float64 `json:"p50_ingest_us"`
	// P99IngestMicros is the p99 accepted-batch round trip.
	P99IngestMicros float64 `json:"p99_ingest_us"`

	// HTTPBatches counts batches accepted over HTTP.
	HTTPBatches int64 `json:"http_batches"`
	// TCPFrames counts frames accepted over the framing datapath.
	TCPFrames int64 `json:"tcp_frames"`
	// Retries counts refused-then-retried sends (QoS pressure realized).
	Retries int64 `json:"retries"`
	// ThrottledIngest sums the servers' rate-ceiling refusal counters.
	ThrottledIngest int64 `json:"throttled_ingest"`
	// ThrottledReleases sums the in-flight-ceiling refusal counters.
	ThrottledReleases int64 `json:"throttled_releases"`
	// Evictions sums offload events.
	Evictions int64 `json:"evictions"`
	// FaultIns sums fault-in events.
	FaultIns int64 `json:"fault_ins"`
	// SummariesFolded sums summaries_merged at the root (cluster runs).
	SummariesFolded int64 `json:"summaries_folded,omitempty"`
	// Releases counts admitted releases across streams.
	Releases int `json:"releases"`

	// Frontier is the per-ε error profile.
	Frontier []FrontierPoint `json:"frontier"`
	// Checks lists the pass/fail assertions.
	Checks []Check `json:"checks"`
	// Pass is the conjunction of all checks.
	Pass bool `json:"pass"`
	// Fingerprint digests the run's deterministic facts (per-stream N,
	// ledger, and — standalone only — probe estimates and seeded twin
	// release hashes); equal fingerprints across a repeat run are the
	// reproducibility proof.
	Fingerprint string `json:"fingerprint"`
	// Deterministic is set by drivers that ran the scenario twice and
	// compared fingerprints.
	Deterministic *bool `json:"deterministic,omitempty"`

	// RecordedBatches, under Options.Record, holds every accepted batch
	// per stream in send order — the replay input for differential tests.
	// Never serialized.
	RecordedBatches map[string][][]stream.Item `json:"-"`
}

// AddCheck appends one named assertion and folds it into Pass.
func (r *Result) AddCheck(name string, pass bool, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: detail})
	r.recomputePass()
}

// recomputePass refreshes the Pass conjunction.
func (r *Result) recomputePass() {
	r.Pass = true
	for _, c := range r.Checks {
		if !c.Pass {
			r.Pass = false
			return
		}
	}
}

// Failed returns the names of failed checks.
func (r *Result) Failed() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c.Name)
		}
	}
	return out
}

// quantileMicros returns the q-quantile of the latency set in
// microseconds (0 when empty). The input is not modified.
func quantileMicros(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Microsecond)
}
