package scenario

import (
	"bytes"
	"testing"
)

// FuzzScenarioSpec fuzzes the spec parser: arbitrary bytes must never
// panic, and any input the parser accepts must survive a marshal →
// reparse → remarshal round-trip byte-identically (the canonical form is
// a fixed point). CI's fuzz-smoke job runs this alongside the codec
// fuzzers.
func FuzzScenarioSpec(f *testing.F) {
	for _, name := range Names() {
		sp, err := Lookup(name, TierTiny)
		if err != nil {
			f.Fatal(err)
		}
		data, err := sp.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","streams":[{"name":"s","k":8,"universe":64,"shards":2,"eps":8,"delta":0.0009765625,"model":"uniform","items":10}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must be internally consistent and canonicalize to
		// a stable byte form.
		if sp.TotalItems() < 1 || sp.TotalStreams() < 1 {
			t.Fatalf("accepted spec with no load: %+v", sp)
		}
		out1, err := sp.Marshal()
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		back, err := ParseSpec(out1)
		if err != nil {
			t.Fatalf("reparse canonical form: %v", err)
		}
		out2, err := back.Marshal()
		if err != nil {
			t.Fatalf("remarshal: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("canonical form not a fixed point:\n%s\nvs\n%s", out1, out2)
		}
		// Seeds and names must be derivable for every replica without
		// panicking (Run leans on these being total for valid specs).
		for i := range sp.Streams {
			ss := &sp.Streams[i]
			for r := 0; r < ss.Count; r++ {
				name := ss.ReplicaName(r)
				if name == "" {
					t.Fatal("empty replica name")
				}
				if sp.ReplicaSeed(name) == 0 {
					t.Fatal("zero replica seed")
				}
			}
		}
	})
}
