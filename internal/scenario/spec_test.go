package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	for _, name := range Names() {
		sp, err := Lookup(name, TierTiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := sp.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		data2, err := back.Marshal()
		if err != nil {
			t.Fatalf("%s: remarshal: %v", name, err)
		}
		if !bytes.Equal(data, data2) {
			t.Errorf("%s: marshal not stable under round-trip", name)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name":"x","typo_knob":1,"streams":[]}`))
	if err == nil || !strings.Contains(err.Error(), "typo_knob") {
		t.Errorf("unknown field not rejected: %v", err)
	}
	_, err = ParseSpec([]byte(`{"name":"x","streams":[]} trailing`))
	if err == nil {
		t.Error("trailing data not rejected")
	}
}

// validBase returns a minimal valid spec tests mutate into invalid shapes.
func validBase() *Spec {
	return &Spec{
		Name: "t", Seed: 1,
		Streams: []StreamSpec{{
			Name: "s", K: 8, Universe: 64, Shards: 2,
			Eps: 8, Delta: 1.0 / (1 << 10),
			Model: "uniform", Items: 100,
		}},
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(sp *Spec) { sp.Name = "" }, "needs a name"},
		{"no streams", func(sp *Spec) { sp.Streams = nil }, "at least one stream"},
		{"k zero", func(sp *Spec) { sp.Streams[0].K = 0 }, "k must be"},
		{"universe one", func(sp *Spec) { sp.Streams[0].Universe = 1 }, "universe"},
		{"no shards", func(sp *Spec) { sp.Streams[0].Shards = 0 }, "shards"},
		{"bad eps", func(sp *Spec) { sp.Streams[0].Eps = 0 }, "budget"},
		{"no items", func(sp *Spec) { sp.Streams[0].Items = 0 }, "items"},
		{"bad model", func(sp *Spec) { sp.Streams[0].Model = "chaos" }, "unknown model"},
		{"bad transport", func(sp *Spec) { sp.Streams[0].Transport = "udp" }, "unknown transport"},
		{"zipf no skew", func(sp *Spec) { sp.Streams[0].Model = "zipf" }, "skew"},
		{"drift overflow", func(sp *Spec) {
			sp.Streams[0].Model = "drift"
			sp.Streams[0].Phases, sp.Streams[0].Heavy, sp.Streams[0].HeavyFrac = 10, 10, 0.5
		}, "drift"},
		{"burst under batch", func(sp *Spec) {
			sp.Streams[0].MaxIngestRate = 100
			sp.Streams[0].IngestBurst = 10
			sp.Streams[0].Batch = 50
		}, "ingest_burst"},
		{"negative qos", func(sp *Spec) { sp.Streams[0].MaxInflightReleases = -1 }, "non-negative"},
		{"grid over budget", func(sp *Spec) { sp.ReleaseEps = []float64{16} }, "over the stream"},
		{"storm without eps", func(sp *Spec) { sp.BudgetStorm = true }, "storm_eps"},
		{"storm with grid", func(sp *Spec) {
			sp.BudgetStorm, sp.StormEps = true, 0.5
			sp.ReleaseEps = []float64{1}
		}, "mutually exclusive"},
		{"cluster evict", func(sp *Spec) { sp.Cluster = true; sp.EvictEvery = 1 }, "cluster excludes"},
		{"duplicate names", func(sp *Spec) {
			sp.Streams = append(sp.Streams, sp.Streams[0])
		}, "duplicate stream name"},
		{"cluster config skew", func(sp *Spec) {
			sp.Cluster = true
			other := sp.Streams[0]
			other.Name, other.K = "s2", 16
			sp.Streams = append(sp.Streams, other)
		}, "cluster streams must share"},
	}
	for _, tc := range cases {
		sp := validBase()
		tc.mut(sp)
		err := sp.Normalize()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCatalogComplete(t *testing.T) {
	for _, tier := range []Tier{TierTiny, TierSmoke, TierFull} {
		specs, err := Catalog(tier)
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		if len(specs) != len(Names()) {
			t.Fatalf("%s: %d specs, want %d", tier, len(specs), len(Names()))
		}
		for i, sp := range specs {
			if sp.Name != Names()[i] {
				t.Errorf("%s: spec %d is %q, want %q", tier, i, sp.Name, Names()[i])
			}
			if sp.Tier != string(tier) {
				t.Errorf("%s/%s: tier label %q", tier, sp.Name, sp.Tier)
			}
		}
	}
	if _, err := Lookup("flash-crowd", Tier("galactic")); err == nil {
		t.Error("unknown tier accepted")
	}
	if _, err := Lookup("nope", TierTiny); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestCatalogDyadic pins the property the bitwise ledger checks lean on:
// every ε and δ the shipped scenarios spend is exactly representable.
func TestCatalogDyadic(t *testing.T) {
	specs, err := Catalog(TierTiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if !dyadic(sp.ReleaseDelta) {
			t.Errorf("%s: release_delta %g not dyadic", sp.Name, sp.ReleaseDelta)
		}
		for _, eps := range sp.ReleaseEps {
			if !dyadic(eps) {
				t.Errorf("%s: release_eps %g not dyadic", sp.Name, eps)
			}
		}
		if sp.BudgetStorm && !dyadic(sp.StormEps) {
			t.Errorf("%s: storm_eps %g not dyadic", sp.Name, sp.StormEps)
		}
		for _, ss := range sp.Streams {
			if !dyadic(ss.Eps) {
				t.Errorf("%s/%s: eps %g not dyadic", sp.Name, ss.Name, ss.Eps)
			}
			if !dyadic(ss.Delta) {
				t.Errorf("%s/%s: delta %g not dyadic", sp.Name, ss.Name, ss.Delta)
			}
		}
	}
}

func TestStormExpected(t *testing.T) {
	cases := []struct {
		budget, storm float64
		want          int
	}{
		{4, 0.5, 8},
		{8, 0.5, 16},
		{4, 4, 1},
		{4, 5, 0},
		{1, 0.25, 4},
	}
	for _, tc := range cases {
		if got := StormExpected(tc.budget, tc.storm); got != tc.want {
			t.Errorf("StormExpected(%g, %g) = %d, want %d", tc.budget, tc.storm, got, tc.want)
		}
	}
}

func TestReplicaNamesAndSeeds(t *testing.T) {
	ss := &StreamSpec{Name: "bg", Count: 3}
	if got := ss.ReplicaName(1); got != "bg-01" {
		t.Errorf("ReplicaName(1) = %q", got)
	}
	single := &StreamSpec{Name: "solo", Count: 1}
	if got := single.ReplicaName(0); got != "solo" {
		t.Errorf("single ReplicaName(0) = %q", got)
	}
	sp := &Spec{Seed: 42}
	a, b := sp.ReplicaSeed("bg-00"), sp.ReplicaSeed("bg-01")
	if a == b {
		t.Error("replica seeds collide")
	}
	if a != sp.ReplicaSeed("bg-00") {
		t.Error("replica seed not stable")
	}
	if sp.ReplicaSeed("") == 0 {
		t.Error("seed 0 not remapped")
	}
}

func TestGenerateDeterministicPerReplica(t *testing.T) {
	sp, err := Lookup("flash-crowd", TierTiny)
	if err != nil {
		t.Fatal(err)
	}
	ss := &sp.Streams[0]
	a, b := ss.Generate(sp, 0), ss.Generate(sp, 0)
	if len(a) != ss.Items {
		t.Fatalf("generated %d items, want %d", len(a), ss.Items)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs across identical generations", i)
		}
	}
	c := ss.Generate(sp, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("replicas 0 and 1 generated identical sequences")
	}
}

func TestSpecAccounting(t *testing.T) {
	sp, err := Lookup("heavy-tail-tenants", TierTiny)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sp.TotalStreams(), 21; got != want {
		t.Errorf("TotalStreams = %d, want %d", got, want)
	}
	if got, want := sp.TotalItems(), int64(4000+4*1000+16*250); got != want {
		t.Errorf("TotalItems = %d, want %d", got, want)
	}
	eps, delta := sp.GridEps(&sp.Streams[0])
	if eps != 0.25+1+4 {
		t.Errorf("GridEps eps = %g", eps)
	}
	if delta != 3*DefaultReleaseDelta {
		t.Errorf("GridEps delta = %g", delta)
	}

	storm, err := Lookup("budget-storm", TierTiny)
	if err != nil {
		t.Fatal(err)
	}
	eps, _ = storm.GridEps(&storm.Streams[0])
	if eps != 4 {
		t.Errorf("storm GridEps eps = %g, want exactly 4", eps)
	}
	if !storm.Fingerprintable() {
		t.Error("standalone scenario not fingerprintable")
	}
	cluster, err := Lookup("cluster-fanin", TierTiny)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Fingerprintable() {
		t.Error("cluster scenario claims full fingerprintability")
	}
	if !Tier(cluster.Tier).valid() {
		t.Errorf("cluster tier %q invalid", cluster.Tier)
	}
}

// valid reports whether the tier is a known size class (test helper).
func (t Tier) valid() bool {
	_, err := t.mult()
	return err == nil
}
