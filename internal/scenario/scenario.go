// Package scenario is the hostile-workload harness: it drives a full
// dpmg-server deployment — the HTTP /v1/streams surface and the framing
// TCP ingest datapath, many tenants, mixed QoS ceilings, lifecycle churn,
// and the 1-root/2-edge aggregation topology — through named adversarial
// scenarios, and turns the paper's utility guarantees into executable
// pass/fail checks over the real server.
//
// Each run produces a Result: a machine-readable frontier row (observed
// top-k estimate error vs ε vs achieved items/s vs p99 ingest latency,
// plus lifecycle/QoS event tallies) and a list of named checks. The
// checks are the point of the package:
//
//   - lemma8-envelope: every probed estimate e satisfies
//     true − N/(k+1) ≤ e ≤ true for the realized stream length N
//     (Lemma 8's additive error, which Corollary 18 preserves across the
//     edge→root merge with N the fleet-wide total).
//   - budget-ledger: the privacy budget the accountant reports spent is
//     exactly the sum of the (ε, δ) the harness was granted — the catalog
//     uses dyadic parameters so the comparison is bitwise, not approximate.
//   - release-error-envelope: released noisy estimates stay within the
//     Lemma 8 envelope plus a 40×noise-scale tail bound.
//   - deterministic ingest: a Twin replay of the recorded batches through
//     an in-process dpmg.Manager must agree exactly with the server's
//     estimates, and seeded twin releases hash identically run over run.
//
// The named scenarios live in catalog.go; cmd/dpmg-scenario runs the
// catalog against real server processes and emits SCENARIO_core.json,
// and scripts/scenario_json.sh wraps that for CI (the scenario-smoke
// job), mirroring the bench_json.sh / BENCH_core.json pattern.
package scenario
