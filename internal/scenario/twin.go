package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"dpmg"
)

// TwinConfig converts a stream template into the dpmg.StreamConfig the
// in-process twin uses: identical sketch identity and budget, QoS
// explicitly unlimited (the twin replays accepted batches — throttling
// them again would be double-counting the refusals).
func TwinConfig(ss StreamSpec) dpmg.StreamConfig {
	return dpmg.StreamConfig{
		K:                   ss.K,
		Universe:            ss.Universe,
		Shards:              ss.Shards,
		Mechanism:           ss.Mechanism,
		Budget:              dpmg.Budget{Eps: ss.Eps, Delta: ss.Delta},
		MaxIngestRate:       -1,
		IngestBurst:         -1,
		MaxInflightReleases: -1,
	}
}

// TwinSeed derives the deterministic seed for the i-th twin release of a
// replica — stable across runs, distinct across (replica, index).
func TwinSeed(sp *Spec, replica string, i int) uint64 {
	return sp.ReplicaSeed(replica)*2654435761 + uint64(i)*0x9e3779b97f4a7c15 + 1
}

// RenderRelease renders one release result canonically (sorted items,
// shortest float form) — the stable byte form the twin hash and the
// repeat-run comparison are built on.
func RenderRelease(name string, res *dpmg.ReleaseResult, eps, delta float64) string {
	out := fmt.Sprintf("%s|%s|%s|%s|", name, res.Mechanism,
		strconv.FormatFloat(eps, 'g', -1, 64), strconv.FormatFloat(delta, 'g', -1, 64))
	metaKeys := make([]string, 0, len(res.Meta))
	for k := range res.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)
	for _, k := range metaKeys {
		out += k + "=" + strconv.FormatFloat(res.Meta[k], 'g', -1, 64) + ";"
	}
	out += "|"
	items := res.Histogram.Items()
	for _, x := range items {
		out += strconv.FormatUint(uint64(x), 10) + ":" +
			strconv.FormatFloat(res.Histogram[x], 'g', -1, 64) + ","
	}
	return out + "\n"
}

// runTwin replays every recorded batch through a fresh in-process
// dpmg.Manager with the exact per-spec stream configs, then:
//
//   - cross-checks the server's probe estimates against the twin's exact
//     estimates (they must agree item for item: the server's published
//     view is complete once the release-time fold ran), and
//   - issues the same release schedule with deterministic seeds, hashing
//     the canonical renderings into the twin hash the fingerprint (and
//     so the repeat-run determinism check) includes.
//
// Returns (hash, pass, detail).
func runTwin(sp *Spec, runs []*streamRun) (string, bool, string) {
	if len(runs) == 0 {
		return "", false, "no streams"
	}
	mgr, err := dpmg.NewManager(TwinConfig(*runs[0].spec))
	if err != nil {
		return "", false, fmt.Sprintf("twin manager: %v", err)
	}
	byName := make(map[string]*streamRun, len(runs))
	for _, r := range runs {
		byName[r.name] = r
	}
	h := sha256.New()
	for _, name := range sp.sortedNames() {
		r := byName[name]
		if r == nil {
			continue
		}
		st, _, cerr := mgr.CreateStream(r.name, TwinConfig(*r.spec))
		if cerr != nil {
			return "", false, fmt.Sprintf("twin create %s: %v", r.name, cerr)
		}
		for _, batch := range r.batches {
			if uerr := st.UpdateBatch(batch); uerr != nil {
				return "", false, fmt.Sprintf("twin replay %s: %v", r.name, uerr)
			}
		}
		if st.Ingested() != r.n {
			return "", false, fmt.Sprintf("twin %s ingested %d, recorded %d", r.name, st.Ingested(), r.n)
		}
		// Same release schedule, seeded: the canonical renderings are the
		// byte-level reproducibility witness folded into the fingerprint.
		schedule := sp.ReleaseEps
		if sp.BudgetStorm {
			schedule = make([]float64, r.stormSuccesses)
			for i := range schedule {
				schedule[i] = sp.StormEps
			}
		}
		for i, eps := range schedule {
			res, rerr := st.ReleaseDetailed(
				dpmg.Params{Eps: eps, Delta: sp.ReleaseDelta},
				dpmg.WithSeed(TwinSeed(sp, r.name, i)))
			if rerr != nil {
				return "", false, fmt.Sprintf("twin release %s ε=%g: %v", r.name, eps, rerr)
			}
			fmt.Fprint(h, RenderRelease(r.name, res, eps, sp.ReleaseDelta))
		}
		// Estimates compare after the releases: both sides serve the
		// k-bounded published read view, and the release-time fold is what
		// republishes it over the complete stream — the server's probe
		// phase ran after its releases for the same reason. EstimateExact
		// would NOT match here: the published view is a bounded merge.
		for _, p := range r.probes {
			want := st.Estimate(p.item)
			if got := r.estimates[p.item]; got != want {
				return "", false, fmt.Sprintf("stream %s item %d: server estimate %d, twin estimate %d", r.name, p.item, got, want)
			}
		}
	}
	hash := hex.EncodeToString(h.Sum(nil))
	return hash, true, fmt.Sprintf("twin estimates agree on every probe; seeded release hash %s", hash[:16])
}
