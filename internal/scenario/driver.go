package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dpmg/internal/encoding"
	"dpmg/internal/framing"
	"dpmg/internal/stream"
)

// Target addresses one dpmg-server: its HTTP base URL and, when the
// scenario uses the TCP datapath, its -ingest-addr listener ("" when the
// server exposes none).
type Target struct {
	// BaseURL is the HTTP surface, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// IngestAddr is the framing TCP listener, e.g. "127.0.0.1:9090".
	IngestAddr string
}

// Topology is the deployment a run drives: a root (the only release /
// stats / admin surface) and, for cluster scenarios, the edge targets
// batches are round-robined across. Standalone runs leave Edges nil and
// ingest into the root directly.
type Topology struct {
	// Root serves releases, estimates, stats, and admin ops.
	Root Target
	// Edges are the ingest-only targets of a cluster scenario.
	Edges []Target
}

// IngestTargets returns where batches go: the edges when present, else
// the root itself.
func (tp Topology) IngestTargets() []Target {
	if len(tp.Edges) > 0 {
		return tp.Edges
	}
	return []Target{tp.Root}
}

// APIError is a non-2xx HTTP response from the server, preserving the
// status and the server's JSON error message so callers can classify
// refusals (throttle vs budget vs unavailable) the way the checks need.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Msg is the server's error string.
	Msg string
}

// Error formats the refusal.
func (e *APIError) Error() string { return fmt.Sprintf("server: %d: %s", e.Status, e.Msg) }

// Client is a thin typed client for the dpmg-server HTTP surface — the
// half of the driver the harness, cmd/dpmg-scenario, and cmd/dpmg-gen
// share. Methods are safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 60 * time.Second},
	}
}

// do issues a request and decodes either the success body into out (when
// non-nil) or the error envelope into an *APIError.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(body, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(body))
		}
		return &APIError{Status: resp.StatusCode, Msg: e.Error}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("scenario: decode %s: %w", req.URL.Path, err)
	}
	return nil
}

// get issues a GET and decodes the response.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// post issues a POST with the given body and decodes the response.
func (c *Client) post(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// CreateStream creates (or idempotently re-creates) a stream from the
// template. All knobs are sent explicitly — the harness never relies on
// server defaults, so the in-process twin can reproduce the exact config.
func (c *Client) CreateStream(ctx context.Context, name string, ss StreamSpec) error {
	body, err := json.Marshal(map[string]any{
		"name":                  name,
		"k":                     ss.K,
		"universe":              ss.Universe,
		"shards":                ss.Shards,
		"mechanism":             ss.Mechanism,
		"eps":                   ss.Eps,
		"delta":                 ss.Delta,
		"max_ingest_rate":       ss.MaxIngestRate,
		"ingest_burst":          ss.IngestBurst,
		"max_inflight_releases": ss.MaxInflightReleases,
	})
	if err != nil {
		return err
	}
	return c.post(ctx, "/v1/streams", body, nil)
}

// PostBatch posts one encoded batch body. The caller retries refusals;
// see Sender for the retrying path.
func (c *Client) PostBatch(ctx context.Context, name string, body []byte) error {
	return c.post(ctx, "/v1/streams/"+name+"/batch", body, nil)
}

// ReleaseDoc is the server's release JSON document.
type ReleaseDoc struct {
	// Stream echoes the stream name.
	Stream string `json:"stream"`
	// Mechanism names the mechanism that produced the noise.
	Mechanism string `json:"mechanism"`
	// Eps is the ε spent.
	Eps float64 `json:"eps"`
	// Delta is the δ spent.
	Delta float64 `json:"delta"`
	// Meta carries calibration metadata (noise_scale, thresholds).
	Meta map[string]float64 `json:"meta"`
	// Items maps decimal item IDs to noisy estimates.
	Items map[string]float64 `json:"items"`
}

// NoiseScale returns the mechanism's calibrated noise scale (0 when the
// mechanism published none).
func (d *ReleaseDoc) NoiseScale() float64 { return d.Meta["noise_scale"] }

// Release requests one private release. Refusals come back as *APIError.
func (c *Client) Release(ctx context.Context, name string, eps, delta float64) (*ReleaseDoc, error) {
	var doc ReleaseDoc
	path := fmt.Sprintf("/v1/streams/%s/release?eps=%s&delta=%s",
		name, strconv.FormatFloat(eps, 'g', -1, 64), strconv.FormatFloat(delta, 'g', -1, 64))
	if err := c.get(ctx, path, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// StatsDoc is the subset of the server's stats document the checks read.
type StatsDoc struct {
	// Stream echoes the stream name.
	Stream string `json:"stream"`
	// K is the summary size.
	K int `json:"k"`
	// Universe is the item-universe bound.
	Universe uint64 `json:"universe"`
	// Nodes counts summaries folded into the merged tier.
	Nodes int `json:"summaries_merged"`
	// Items counts raw items ingested.
	Items int64 `json:"items_ingested"`
	// RemainingEps is the unspent ε budget.
	RemainingEps float64 `json:"remaining_eps"`
	// RemainingDelta is the unspent δ budget.
	RemainingDelta float64 `json:"remaining_delta"`
	// Releases counts admitted releases.
	Releases int `json:"releases"`
	// Resident reports whether counters are in RAM.
	Resident bool `json:"resident"`
	// Evictions counts offloads since process start.
	Evictions int64 `json:"evictions"`
	// FaultIns counts fault-ins since process start.
	FaultIns int64 `json:"fault_ins"`
	// ThrottledIngest counts rate-ceiling refusals.
	ThrottledIngest int64 `json:"throttled_ingest"`
	// ThrottledReleases counts in-flight-ceiling refusals.
	ThrottledReleases int64 `json:"throttled_releases"`
}

// Stats fetches a stream's stats document.
func (c *Client) Stats(ctx context.Context, name string) (*StatsDoc, error) {
	var doc StatsDoc
	if err := c.get(ctx, "/v1/streams/"+name+"/stats", &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Estimate fetches the published-view point estimate for one item.
func (c *Client) Estimate(ctx context.Context, name string, item stream.Item) (int64, error) {
	var doc struct {
		Estimate int64 `json:"estimate"`
	}
	path := "/v1/streams/" + name + "/estimate?item=" + strconv.FormatUint(uint64(item), 10)
	if err := c.get(ctx, path, &doc); err != nil {
		return 0, err
	}
	return doc.Estimate, nil
}

// AdminEvict offloads a stream through the admin lever, returning whether
// the call changed residency.
func (c *Client) AdminEvict(ctx context.Context, name string) (changed bool, err error) {
	var doc struct {
		Changed bool `json:"changed"`
	}
	if err := c.post(ctx, "/v1/admin/streams/"+name+"/evict", nil, &doc); err != nil {
		return false, err
	}
	return doc.Changed, nil
}

// AdminFaultIn faults an offloaded stream back in.
func (c *Client) AdminFaultIn(ctx context.Context, name string) (changed bool, err error) {
	var doc struct {
		Changed bool `json:"changed"`
	}
	if err := c.post(ctx, "/v1/admin/streams/"+name+"/faultin", nil, &doc); err != nil {
		return false, err
	}
	return doc.Changed, nil
}

// DrainDoc is the admin drain report.
type DrainDoc struct {
	// Role is the server's role ("standalone" | "edge" | "root").
	Role string `json:"role"`
	// Edge is the edge-specific drain report (nil elsewhere).
	Edge *struct {
		// Flushed reports whether every spooled and final cut summary
		// reached the upstream root.
		Flushed bool `json:"flushed"`
		// SpoolPending counts summaries still spooled (0 when Flushed).
		SpoolPending int64 `json:"spool_pending"`
		// Error carries the flush failure, if any.
		Error string `json:"error,omitempty"`
	} `json:"edge,omitempty"`
}

// AdminDrain drains the server (terminal; the process stops accepting
// ingest). On edges it synchronously flushes the spool and final cuts.
func (c *Client) AdminDrain(ctx context.Context) (*DrainDoc, error) {
	var doc DrainDoc
	if err := c.post(ctx, "/v1/admin/drain", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// WaitReady polls the target's /metrics until it answers 200 or the
// context ends — the "server is up" probe every launcher needs.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("scenario: server %s not ready: %w", c.base, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// SendStats tallies what one Sender did — the raw material of the
// frontier row's throughput, latency, and transport-mix fields.
type SendStats struct {
	// HTTPBatches counts batches accepted over HTTP.
	HTTPBatches int64
	// TCPFrames counts frames accepted over the framing datapath.
	TCPFrames int64
	// Retries counts refused attempts (throttle or unavailable) that
	// were retried until acceptance.
	Retries int64
	// Latencies holds one accepted-send round-trip time per batch.
	Latencies []time.Duration
}

// Sender ships one stream's batches to one target over the spec's
// transport, retrying QoS refusals with capped backoff so the accepted
// item sequence is exactly the generated sequence (all-or-nothing
// refusals ingest nothing, so retrying preserves order — the property
// the determinism checks rest on). Not safe for concurrent use: one
// sender belongs to one stream-driver goroutine.
type Sender struct {
	client     *Client
	target     Target
	streamName string
	transport  Transport
	tcp        *framing.Client
	sent       int64 // batches sent, drives mixed-transport alternation

	// Stats accumulates the sender's tallies.
	Stats SendStats
}

// NewSender builds a sender for one stream at one target. The framing
// connection is dialed lazily on the first TCP batch.
func NewSender(client *Client, target Target, streamName string, transport Transport) *Sender {
	return &Sender{client: client, target: target, streamName: streamName, transport: transport}
}

// useTCP decides the transport for the next batch.
func (s *Sender) useTCP() bool {
	switch s.transport {
	case TransportTCP:
		return true
	case TransportMixed:
		return s.sent%2 == 1
	}
	return false
}

// backoff sleeps the n-th retry delay (1ms doubling, capped at 50ms),
// honoring context cancellation.
func backoff(ctx context.Context, n int) error {
	d := time.Millisecond << uint(min(n, 6))
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// Send ships one batch, blocking through QoS refusals until the server
// accepts it. The round-trip latency of the accepted attempt is recorded.
func (s *Sender) Send(ctx context.Context, items []stream.Item) error {
	useTCP := s.useTCP() && s.target.IngestAddr != ""
	var err error
	if useTCP {
		err = s.sendTCP(ctx, items)
	} else {
		err = s.sendHTTP(ctx, items)
	}
	if err == nil {
		s.sent++
	}
	return err
}

// sendHTTP posts the batch, retrying 429 (rate limit) and 503
// (unavailable / fault-in trouble) — both all-or-nothing refusals.
func (s *Sender) sendHTTP(ctx context.Context, items []stream.Item) error {
	var buf bytes.Buffer
	if err := encoding.MarshalItems(&buf, items); err != nil {
		return err
	}
	body := buf.Bytes()
	for attempt := 0; ; attempt++ {
		start := time.Now()
		err := s.client.PostBatch(ctx, s.streamName, body)
		if err == nil {
			s.Stats.HTTPBatches++
			s.Stats.Latencies = append(s.Stats.Latencies, time.Since(start))
			return nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) &&
			(apiErr.Status == http.StatusTooManyRequests || apiErr.Status == http.StatusServiceUnavailable) {
			s.Stats.Retries++
			if berr := backoff(ctx, attempt); berr != nil {
				return berr
			}
			continue
		}
		return err
	}
}

// sendTCP ships the batch as one framing data frame, dialing (and
// re-binding) lazily, retrying AckRateLimited / AckUnavailable.
func (s *Sender) sendTCP(ctx context.Context, items []stream.Item) error {
	for attempt := 0; ; attempt++ {
		if s.tcp == nil {
			c, err := framing.DialTimeout(s.target.IngestAddr, 10*time.Second)
			if err != nil {
				return fmt.Errorf("scenario: dial ingest %s: %w", s.target.IngestAddr, err)
			}
			if err := c.Bind(s.streamName); err != nil {
				c.Close() //nolint:errcheck // already failing
				return fmt.Errorf("scenario: bind %s: %w", s.streamName, err)
			}
			s.tcp = c
		}
		start := time.Now()
		err := s.tcp.Send(items)
		if err == nil {
			s.Stats.TCPFrames++
			s.Stats.Latencies = append(s.Stats.Latencies, time.Since(start))
			return nil
		}
		var ackErr *framing.AckError
		if errors.As(err, &ackErr) &&
			(ackErr.Ack.Code == framing.AckRateLimited || ackErr.Ack.Code == framing.AckUnavailable) {
			s.Stats.Retries++
			if berr := backoff(ctx, attempt); berr != nil {
				return berr
			}
			continue
		}
		// Connection-level trouble: drop the client and let the caller's
		// error surface (the harness runs against healthy servers; a dead
		// socket is a finding, not something to paper over).
		s.tcp.Close() //nolint:errcheck // already failing
		s.tcp = nil
		return fmt.Errorf("scenario: tcp send %s: %w", s.streamName, err)
	}
}

// Close closes the sender's framing connection, if one was dialed.
func (s *Sender) Close() error {
	if s.tcp == nil {
		return nil
	}
	err := s.tcp.Close()
	s.tcp = nil
	return err
}
