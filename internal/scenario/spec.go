package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"dpmg/internal/framing"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

// Transport selects how a stream's batches reach the server.
type Transport string

// Transports. Mixed alternates per batch, exercising both datapaths
// against the same sketch state (their equivalence is a pinned invariant).
const (
	// TransportHTTP posts batches to POST /v1/streams/{s}/batch.
	TransportHTTP Transport = "http"
	// TransportTCP ships batches as framing data frames over a persistent
	// connection to the server's -ingest-addr listener.
	TransportTCP Transport = "tcp"
	// TransportMixed alternates HTTP and TCP per batch.
	TransportMixed Transport = "mixed"
)

// StreamSpec describes one tenant template in a scenario. Count > 1
// stamps replicas ("name-00", "name-01", …) with per-replica derived
// seeds, so a single template can describe a fleet of look-alike tenants.
type StreamSpec struct {
	// Name is the stream name (or replica prefix when Count > 1).
	Name string `json:"name"`
	// Count is the number of replicas (default 1).
	Count int `json:"count,omitempty"`

	// K is the summary size (counters per sketch). Required: the harness
	// never relies on server defaults, so runs are self-describing.
	K int `json:"k"`
	// Universe bounds items to [1, Universe]. Required.
	Universe uint64 `json:"universe"`
	// Shards pins the raw-ingest shard count. Required so the in-process
	// twin resolves to the same topology as the server regardless of
	// GOMAXPROCS (the default shard count is machine-dependent).
	Shards int `json:"shards"`
	// Eps is the stream's total ε budget. Required.
	Eps float64 `json:"eps"`
	// Delta is the stream's total δ budget. Required.
	Delta float64 `json:"delta"`
	// Mechanism optionally names the release mechanism ("" = server
	// default for the merged sensitivity class).
	Mechanism string `json:"mechanism,omitempty"`

	// MaxIngestRate is the per-stream QoS ceiling in items/s (0 = no
	// ceiling). Scenarios that want 429/AckRateLimited pressure set it
	// below the offered rate.
	MaxIngestRate float64 `json:"max_ingest_rate,omitempty"`
	// IngestBurst is the token-bucket burst in items. Must be ≥ Batch
	// when MaxIngestRate is set: a batch larger than the burst can never
	// be admitted and the sender would retry forever.
	IngestBurst int `json:"ingest_burst,omitempty"`
	// MaxInflightReleases caps concurrent releases (0 = no ceiling).
	MaxInflightReleases int `json:"max_inflight_releases,omitempty"`

	// Model selects the workload generator: zipf | uniform | adversarial
	// | heavytail | drift | packets.
	Model string `json:"model"`
	// Skew is the Zipf exponent (zipf model).
	Skew float64 `json:"skew,omitempty"`
	// Heavy is the explicit heavy-hitter / elephant / per-phase count
	// (heavytail, packets, drift models).
	Heavy int `json:"heavy,omitempty"`
	// HeavyFrac is the mass fraction the heavy set carries (heavytail,
	// packets, drift models).
	HeavyFrac float64 `json:"heavy_frac,omitempty"`
	// Phases is the number of rotation phases (drift model).
	Phases int `json:"phases,omitempty"`

	// Items is the stream length N per replica.
	Items int `json:"items"`
	// Batch is the batch size items are shipped in (default 1024).
	Batch int `json:"batch,omitempty"`
	// Transport selects the datapath (default http).
	Transport Transport `json:"transport,omitempty"`
}

// Spec is one named scenario: a tenant mix plus the release schedule and
// the hostile twist (throttle pressure, lifecycle churn, budget storm, or
// the cluster topology) the run applies.
type Spec struct {
	// Name identifies the scenario ("flash-crowd", …).
	Name string `json:"name"`
	// Tier labels the size class this spec was built for (tiny | smoke |
	// full); informational, echoed into the Result row.
	Tier string `json:"tier,omitempty"`
	// Seed is the master seed; every replica derives its own stream seed
	// from it, so a Spec is one deterministic experiment.
	Seed uint64 `json:"seed"`
	// Workers bounds concurrent stream drivers (default 4). Each stream
	// is always driven by exactly one worker — per-stream sends stay
	// sequential, which is what makes the realized sketch state (and so
	// the whole run) deterministic.
	Workers int `json:"workers,omitempty"`
	// Streams is the tenant mix.
	Streams []StreamSpec `json:"streams"`

	// ReleaseEps is the ε grid released per stream after ingest (ignored
	// when BudgetStorm is set). Defaults to {0.25, 1, 4} — dyadic, so
	// ledger checks are bitwise exact.
	ReleaseEps []float64 `json:"release_eps,omitempty"`
	// ReleaseDelta is the per-release δ (default 2⁻²³).
	ReleaseDelta float64 `json:"release_delta,omitempty"`

	// EvictEvery > 0 turns on lifecycle churn: after every EvictEvery
	// batches the driver round-trips the stream through the admin
	// evict/fault-in levers while ingest continues. Requires a server
	// with -state.
	EvictEvery int `json:"evict_every,omitempty"`
	// ExpectThrottle asserts that QoS pressure actually materialized
	// (throttled_ingest > 0 server-side).
	ExpectThrottle bool `json:"expect_throttle,omitempty"`
	// BudgetStorm hammers releases of StormEps each until the accountant
	// refuses, asserting the exact admitted count.
	BudgetStorm bool `json:"budget_storm,omitempty"`
	// StormEps is the per-release ε during a budget storm.
	StormEps float64 `json:"storm_eps,omitempty"`
	// StormWorkers is the concurrent release-storm client count per
	// stream (default 3).
	StormWorkers int `json:"storm_workers,omitempty"`
	// Cluster runs the scenario against a 1-root + 2-edge topology:
	// batches round-robin across the edges, edges are drained, and all
	// checks read the root's folded state.
	Cluster bool `json:"cluster,omitempty"`
	// ProbeTop is how many top-true items per stream are probed through
	// /estimate for the envelope checks (default 8).
	ProbeTop int `json:"probe_top,omitempty"`
}

// DefaultReleaseDelta is the per-release δ when a spec leaves it zero:
// 2⁻²³, exactly representable so ledger arithmetic stays bitwise exact.
const DefaultReleaseDelta = 1.0 / (1 << 23)

// defaultReleaseEps is the dyadic default ε grid.
func defaultReleaseEps() []float64 { return []float64{0.25, 1, 4} }

// ParseSpec decodes and validates one scenario spec from JSON. Unknown
// fields are rejected (a typoed knob must not silently become a no-op)
// and defaults are normalized in place.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse spec: trailing data after JSON document")
	}
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Normalize fills defaults and validates the spec. It is idempotent; Run
// and ParseSpec both call it, so hand-built specs get the same treatment
// as parsed ones.
func (sp *Spec) Normalize() error {
	if sp.Workers == 0 {
		sp.Workers = 4
	}
	if sp.ProbeTop == 0 {
		sp.ProbeTop = 8
	}
	if sp.ReleaseDelta == 0 {
		sp.ReleaseDelta = DefaultReleaseDelta
	}
	if len(sp.ReleaseEps) == 0 && !sp.BudgetStorm {
		sp.ReleaseEps = defaultReleaseEps()
	}
	if sp.BudgetStorm && sp.StormWorkers == 0 {
		sp.StormWorkers = 3
	}
	for i := range sp.Streams {
		ss := &sp.Streams[i]
		if ss.Count == 0 {
			ss.Count = 1
		}
		if ss.Batch == 0 {
			ss.Batch = 1024
		}
		if ss.Transport == "" {
			ss.Transport = TransportHTTP
		}
	}
	return sp.Validate()
}

// Validate checks the spec for configurations the server or the checks
// cannot honor. It reports the first problem found.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(sp.Streams) == 0 {
		return fmt.Errorf("scenario %s: needs at least one stream", sp.Name)
	}
	if len(sp.Streams) > 1024 {
		return fmt.Errorf("scenario %s: %d stream templates, over the 1024 cap", sp.Name, len(sp.Streams))
	}
	if sp.Workers < 1 || sp.Workers > 256 {
		return fmt.Errorf("scenario %s: workers %d outside [1, 256]", sp.Name, sp.Workers)
	}
	if sp.ProbeTop < 1 || sp.ProbeTop > 1024 {
		return fmt.Errorf("scenario %s: probe_top %d outside [1, 1024]", sp.Name, sp.ProbeTop)
	}
	if sp.ReleaseDelta <= 0 || sp.ReleaseDelta >= 1 {
		return fmt.Errorf("scenario %s: release_delta %g outside (0, 1)", sp.Name, sp.ReleaseDelta)
	}
	for _, eps := range sp.ReleaseEps {
		if eps <= 0 {
			return fmt.Errorf("scenario %s: release_eps entries must be positive, got %g", sp.Name, eps)
		}
	}
	if sp.BudgetStorm {
		if sp.StormEps <= 0 {
			return fmt.Errorf("scenario %s: budget_storm needs storm_eps > 0", sp.Name)
		}
		if sp.StormWorkers < 1 || sp.StormWorkers > 64 {
			return fmt.Errorf("scenario %s: storm_workers %d outside [1, 64]", sp.Name, sp.StormWorkers)
		}
		if len(sp.ReleaseEps) > 0 {
			return fmt.Errorf("scenario %s: budget_storm and release_eps are mutually exclusive", sp.Name)
		}
	}
	if sp.Cluster && sp.EvictEvery > 0 {
		return fmt.Errorf("scenario %s: cluster excludes evict_every (edges refuse -state)", sp.Name)
	}
	if sp.Cluster && sp.BudgetStorm {
		return fmt.Errorf("scenario %s: cluster excludes budget_storm (keep the ledger check single-owner)", sp.Name)
	}
	seen := make(map[string]bool)
	for i := range sp.Streams {
		ss := &sp.Streams[i]
		if err := ss.validate(sp); err != nil {
			return err
		}
		for r := 0; r < ss.Count; r++ {
			name := ss.ReplicaName(r)
			if seen[name] {
				return fmt.Errorf("scenario %s: duplicate stream name %q", sp.Name, name)
			}
			seen[name] = true
		}
	}
	if sp.Cluster {
		// Root auto-creation stamps streams from the root manager's
		// defaults, which cmd/dpmg-scenario derives from the spec — so
		// every cluster stream must agree on sketch identity and budget.
		first := sp.Streams[0]
		for _, ss := range sp.Streams[1:] {
			if ss.K != first.K || ss.Universe != first.Universe ||
				ss.Eps != first.Eps || ss.Delta != first.Delta || ss.Mechanism != first.Mechanism {
				return fmt.Errorf("scenario %s: cluster streams must share k/universe/eps/delta/mechanism (root auto-creates from one default)", sp.Name)
			}
		}
	}
	return nil
}

// validate checks one stream template against the enclosing spec.
func (ss *StreamSpec) validate(sp *Spec) error {
	where := fmt.Sprintf("scenario %s stream %s", sp.Name, ss.Name)
	if ss.Name == "" {
		return fmt.Errorf("scenario %s: stream needs a name", sp.Name)
	}
	if ss.Count < 1 || ss.Count > 512 {
		return fmt.Errorf("%s: count %d outside [1, 512]", where, ss.Count)
	}
	if ss.K < 1 {
		return fmt.Errorf("%s: k must be ≥ 1", where)
	}
	if ss.Universe < 2 || ss.Universe > 1<<31 {
		return fmt.Errorf("%s: universe %d outside [2, 2³¹]", where, ss.Universe)
	}
	if ss.Shards < 1 || ss.Shards > 64 {
		return fmt.Errorf("%s: shards %d outside [1, 64] (explicit shards keep the twin deterministic)", where, ss.Shards)
	}
	if ss.Eps <= 0 || ss.Delta <= 0 || ss.Delta >= 1 {
		return fmt.Errorf("%s: budget needs eps > 0 and delta in (0, 1)", where)
	}
	if ss.Items < 1 || ss.Items > 1<<32 {
		return fmt.Errorf("%s: items %d outside [1, 2³²] (the cap keeps fleet totals overflow-safe)", where, ss.Items)
	}
	if ss.Batch < 1 || ss.Batch > framing.MaxDataItems {
		return fmt.Errorf("%s: batch %d outside [1, %d]", where, ss.Batch, framing.MaxDataItems)
	}
	if ss.MaxIngestRate > 0 && ss.IngestBurst < ss.Batch {
		return fmt.Errorf("%s: ingest_burst %d < batch %d: a batch above the burst is never admitted and the sender would retry forever", where, ss.IngestBurst, ss.Batch)
	}
	if ss.MaxIngestRate < 0 || ss.IngestBurst < 0 || ss.MaxInflightReleases < 0 {
		return fmt.Errorf("%s: QoS ceilings must be non-negative (the spec layer has no 'inherit' sentinel)", where)
	}
	switch ss.Transport {
	case TransportHTTP, TransportTCP, TransportMixed:
	default:
		return fmt.Errorf("%s: unknown transport %q", where, ss.Transport)
	}
	if !sp.BudgetStorm {
		var grid float64
		for _, eps := range sp.ReleaseEps {
			grid += eps
		}
		if grid > ss.Eps {
			return fmt.Errorf("%s: release_eps grid sums to %g, over the stream's ε budget %g", where, grid, ss.Eps)
		}
		if d := float64(len(sp.ReleaseEps)) * sp.ReleaseDelta; d > ss.Delta {
			return fmt.Errorf("%s: release grid spends δ %g, over the stream's δ budget %g", where, d, ss.Delta)
		}
	}
	if sp.BudgetStorm && ss.Eps < sp.StormEps {
		return fmt.Errorf("%s: ε budget %g below storm_eps %g admits zero releases", where, ss.Eps, sp.StormEps)
	}
	d := int(ss.Universe)
	switch ss.Model {
	case "zipf":
		if ss.Skew <= 0 {
			return fmt.Errorf("%s: zipf needs skew > 0", where)
		}
	case "uniform":
	case "adversarial":
		if uint64(ss.K)+1 > ss.Universe {
			return fmt.Errorf("%s: adversarial needs universe ≥ k+1", where)
		}
	case "heavytail":
		if ss.Heavy < 1 || ss.Heavy > d {
			return fmt.Errorf("%s: heavytail needs heavy in [1, universe]", where)
		}
		if ss.HeavyFrac <= 0 || ss.HeavyFrac > 1 {
			return fmt.Errorf("%s: heavytail needs heavy_frac in (0, 1]", where)
		}
	case "drift":
		if ss.Phases < 1 || ss.Heavy < 1 || ss.Phases*ss.Heavy > d {
			return fmt.Errorf("%s: drift needs phases ≥ 1, heavy ≥ 1, phases×heavy ≤ universe", where)
		}
		if ss.HeavyFrac <= 0 || ss.HeavyFrac > 1 {
			return fmt.Errorf("%s: drift needs heavy_frac in (0, 1]", where)
		}
	case "packets":
		if ss.Heavy < 1 || ss.Heavy >= d {
			return fmt.Errorf("%s: packets needs heavy (elephants) in [1, universe)", where)
		}
		if ss.HeavyFrac <= 0 || ss.HeavyFrac >= 1 {
			return fmt.Errorf("%s: packets needs heavy_frac in (0, 1)", where)
		}
	default:
		return fmt.Errorf("%s: unknown model %q", where, ss.Model)
	}
	return nil
}

// ReplicaName returns the stream name of replica i: the bare Name when
// Count is 1, "name-NN" otherwise.
func (ss *StreamSpec) ReplicaName(i int) string {
	if ss.Count <= 1 {
		return ss.Name
	}
	return fmt.Sprintf("%s-%02d", ss.Name, i)
}

// ReplicaSeed derives the deterministic per-replica seed: master seed
// mixed with an FNV-1a hash of the replica name, so replicas differ but a
// rerun reproduces every stream exactly.
func (sp *Spec) ReplicaSeed(replica string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(replica)) //nolint:errcheck // hash.Hash never errors
	seed := sp.Seed ^ h.Sum64()
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Generate produces replica i's full item sequence. The sequence depends
// only on (spec seed, replica name, template), never on timing, which is
// what the determinism checks lean on.
func (ss *StreamSpec) Generate(sp *Spec, i int) stream.Stream {
	seed := sp.ReplicaSeed(ss.ReplicaName(i))
	d := int(ss.Universe)
	switch ss.Model {
	case "zipf":
		return workload.Zipf(ss.Items, d, ss.Skew, seed)
	case "uniform":
		return workload.Uniform(ss.Items, d, seed)
	case "adversarial":
		return workload.Adversarial(ss.Items, ss.K)
	case "heavytail":
		return workload.HeavyTail(ss.Items, d, ss.Heavy, ss.HeavyFrac, seed)
	case "drift":
		return workload.Drift(ss.Items, d, ss.Phases, ss.Heavy, ss.HeavyFrac, seed)
	case "packets":
		return workload.NewPacketTrace(d, ss.Heavy, ss.HeavyFrac, seed).Stream(ss.Items)
	}
	panic(fmt.Sprintf("scenario: unvalidated model %q", ss.Model)) // Validate gates Run
}

// TotalItems is the offered load across all replicas of all templates.
func (sp *Spec) TotalItems() int64 {
	var n int64
	for _, ss := range sp.Streams {
		n += int64(ss.Items) * int64(ss.Count)
	}
	return n
}

// TotalStreams is the replica count across all templates.
func (sp *Spec) TotalStreams() int {
	n := 0
	for _, ss := range sp.Streams {
		n += ss.Count
	}
	return n
}

// NeedsStore reports whether the scenario requires a server with an
// offload store (-state): lifecycle churn does, everything else not.
func (sp *Spec) NeedsStore() bool { return sp.EvictEvery > 0 }

// StormExpected is the exact number of storm releases the accountant
// admits for a stream with the given ε budget: the largest m with
// m×storm_eps ≤ budget. Computed by repeated addition, not division, so
// it mirrors the accountant's own running-sum arithmetic bit for bit.
func StormExpected(budgetEps, stormEps float64) int {
	spent, m := 0.0, 0
	for spent+stormEps <= budgetEps+1e-12 {
		spent += stormEps
		m++
		if m > 1<<20 {
			break // degenerate spec; Validate keeps real ones far below
		}
	}
	return m
}

// GridEps returns the total (ε, δ) one stream's release schedule spends:
// the grid sum, or the exact storm spend under the stream's budget.
func (sp *Spec) GridEps(ss *StreamSpec) (eps, delta float64) {
	if sp.BudgetStorm {
		m := StormExpected(ss.Eps, sp.StormEps)
		for i := 0; i < m; i++ {
			eps += sp.StormEps
			delta += sp.ReleaseDelta
		}
		return eps, delta
	}
	for _, e := range sp.ReleaseEps {
		eps += e
		delta += sp.ReleaseDelta
	}
	return eps, delta
}

// Marshal renders the spec back to canonical JSON (stable field order,
// trailing newline) — the fuzz target round-trips specs through it.
func (sp *Spec) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Fingerprintable reports whether probe estimates may be folded into the
// run fingerprint. Standalone runs are fully deterministic; cluster runs
// are not item-for-item (ship-cycle timing moves cut boundaries, and a
// merged MG view depends on them), so their fingerprint covers only the
// timing-independent facts (N, ledger).
func (sp *Spec) Fingerprintable() bool { return !sp.Cluster }

// dyadic reports whether f is exactly representable as a sum of powers of
// two with a short mantissa — the property that makes ledger comparisons
// bitwise. Used by catalog tests to keep the shipped scenarios honest.
func dyadic(f float64) bool {
	if f <= 0 {
		return false
	}
	frac, _ := math.Frexp(f)
	// frac is in [0.5, 1); short mantissa ⇔ frac × 2¹⁶ is an integer.
	scaled := frac * (1 << 16)
	return scaled == math.Trunc(scaled)
}

// sortedNames returns all replica names in sorted order (fingerprints and
// reports iterate streams in this order).
func (sp *Spec) sortedNames() []string {
	var names []string
	for _, ss := range sp.Streams {
		for i := 0; i < ss.Count; i++ {
			names = append(names, ss.ReplicaName(i))
		}
	}
	sort.Strings(names)
	return names
}
