package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpmg/internal/stream"
)

// Options tunes one Run.
type Options struct {
	// Record keeps every accepted batch in Result.RecordedBatches — the
	// replay input for differential tests and the Twin. Costs memory
	// proportional to the offered load.
	Record bool
	// Twin, for standalone runs, replays the recorded batches through an
	// in-process dpmg.Manager and cross-checks estimates exactly, then
	// hashes seeded twin releases into the fingerprint (the byte-level
	// reproducibility witness). Implies Record.
	Twin bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// probe is one item whose estimate the checks examine.
type probe struct {
	item  stream.Item
	truth int64
	heavy bool // top-true item: release-error check applies
}

// streamRun is the per-replica driver state.
type streamRun struct {
	spec    *StreamSpec
	name    string
	replica int

	truth   map[stream.Item]int64
	n       int64
	batches [][]stream.Item
	send    SendStats

	evictIssued int64

	remBeforeEps, remBeforeDelta float64
	docs                         []*ReleaseDoc
	stormSuccesses               int
	stormFinalMsg                string

	probes    []probe
	estimates map[stream.Item]int64
	after     *StatsDoc
}

// Run drives one scenario against the topology and returns its frontier
// row. The run is deterministic given (spec, topology shape): per-stream
// sends are sequential, refusals are all-or-nothing and retried, and all
// randomness comes from the spec seed.
func Run(ctx context.Context, tp Topology, sp *Spec, opts Options) (*Result, error) {
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	if sp.Cluster && len(tp.Edges) < 2 {
		return nil, fmt.Errorf("scenario %s: cluster scenario needs at least 2 edge targets", sp.Name)
	}
	if !sp.Cluster && len(tp.Edges) != 0 {
		return nil, fmt.Errorf("scenario %s: standalone scenario cannot take edge targets", sp.Name)
	}
	if opts.Twin {
		opts.Record = true
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ingest := tp.IngestTargets()
	for _, ss := range sp.Streams {
		if ss.Transport == TransportHTTP {
			continue
		}
		for _, t := range ingest {
			if t.IngestAddr == "" {
				return nil, fmt.Errorf("scenario %s: stream %s uses transport %q but target %s has no ingest address", sp.Name, ss.Name, ss.Transport, t.BaseURL)
			}
		}
	}

	root := NewClient(tp.Root.BaseURL)
	ingestClients := make([]*Client, len(ingest))
	for i, t := range ingest {
		ingestClients[i] = NewClient(t.BaseURL)
	}

	var runs []*streamRun
	for si := range sp.Streams {
		ss := &sp.Streams[si]
		for i := 0; i < ss.Count; i++ {
			runs = append(runs, &streamRun{
				spec: ss, name: ss.ReplicaName(i), replica: i,
				truth:     make(map[stream.Item]int64),
				estimates: make(map[stream.Item]int64),
			})
		}
	}

	// Create every stream everywhere it is addressed: on each ingest
	// target, and — for cluster runs — on the root too, so folds land in
	// a stream configured exactly per spec instead of relying on the
	// root's auto-create defaults.
	creators := ingestClients
	if sp.Cluster {
		creators = append([]*Client{root}, ingestClients...)
	}
	for _, cl := range creators {
		for _, r := range runs {
			if err := cl.CreateStream(ctx, r.name, *r.spec); err != nil {
				return nil, fmt.Errorf("scenario %s: create stream %s: %w", sp.Name, r.name, err)
			}
		}
	}

	res := &Result{
		Scenario: sp.Name, Tier: sp.Tier, Cluster: sp.Cluster,
		Streams: len(runs),
	}
	for _, r := range runs {
		if r.spec.K > res.K {
			res.K = r.spec.K
		}
		if r.spec.Universe > res.Universe {
			res.Universe = r.spec.Universe
		}
	}

	logf("scenario %s: ingesting %d items across %d streams (%d workers)", sp.Name, sp.TotalItems(), len(runs), sp.Workers)
	start := time.Now()
	err := forEachRun(ctx, sp.Workers, runs, func(ctx context.Context, r *streamRun) error {
		return ingestOne(ctx, sp, ingest, ingestClients, root, r, opts.Record)
	})
	if err != nil {
		return nil, err
	}
	ingestDur := time.Since(start)

	// Cluster: drain every edge so each one's spool and final cut
	// summaries are synchronously flushed to the root before any check
	// reads the folded state.
	if sp.Cluster {
		for i, cl := range ingestClients {
			doc, derr := cl.AdminDrain(ctx)
			if derr != nil {
				return nil, fmt.Errorf("scenario %s: drain edge %d: %w", sp.Name, i, derr)
			}
			ok := doc.Edge != nil && doc.Edge.Flushed
			detail := fmt.Sprintf("edge %d role=%s", i, doc.Role)
			if doc.Edge != nil {
				detail = fmt.Sprintf("edge %d flushed=%v spool_pending=%d err=%q", i, doc.Edge.Flushed, doc.Edge.SpoolPending, doc.Edge.Error)
			}
			res.AddCheck(fmt.Sprintf("edge-drain-%d", i), ok, detail)
		}
	}

	// Ledger baseline: remaining budget before any release.
	for _, r := range runs {
		st, serr := root.Stats(ctx, r.name)
		if serr != nil {
			return nil, fmt.Errorf("scenario %s: stats %s: %w", sp.Name, r.name, serr)
		}
		r.remBeforeEps, r.remBeforeDelta = st.RemainingEps, st.RemainingDelta
	}

	// Releases come before estimate probes: the release-time fold
	// republishes the read view, so probes observe the complete stream.
	logf("scenario %s: release phase", sp.Name)
	if sp.BudgetStorm {
		err = forEachRun(ctx, sp.Workers, runs, func(ctx context.Context, r *streamRun) error {
			return stormOne(ctx, root, sp, r)
		})
	} else {
		err = forEachRun(ctx, sp.Workers, runs, func(ctx context.Context, r *streamRun) error {
			for _, eps := range sp.ReleaseEps {
				doc, rerr := releaseWithRetry(ctx, root, r.name, eps, sp.ReleaseDelta)
				if rerr != nil {
					return rerr
				}
				r.docs = append(r.docs, doc)
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}

	// Probe phase.
	err = forEachRun(ctx, sp.Workers, runs, func(ctx context.Context, r *streamRun) error {
		r.probes = pickProbes(sp, r)
		for _, p := range r.probes {
			est, perr := root.Estimate(ctx, r.name, p.item)
			if perr != nil {
				return perr
			}
			r.estimates[p.item] = est
		}
		var aerr error
		r.after, aerr = root.Stats(ctx, r.name)
		return aerr
	})
	if err != nil {
		return nil, err
	}

	// Tallies.
	var latencies []time.Duration
	for _, r := range runs {
		res.Items += r.n
		res.HTTPBatches += r.send.HTTPBatches
		res.TCPFrames += r.send.TCPFrames
		res.Retries += r.send.Retries
		latencies = append(latencies, r.send.Latencies...)
		res.ThrottledIngest += r.after.ThrottledIngest
		res.ThrottledReleases += r.after.ThrottledReleases
		res.Evictions += r.after.Evictions
		res.FaultIns += r.after.FaultIns
		res.Releases += r.after.Releases
		if sp.Cluster {
			res.SummariesFolded += int64(r.after.Nodes)
		}
	}
	res.IngestSeconds = ingestDur.Seconds()
	if res.IngestSeconds > 0 {
		res.ItemsPerSec = float64(res.Items) / res.IngestSeconds
	}
	res.P50IngestMicros = quantileMicros(latencies, 0.50)
	res.P99IngestMicros = quantileMicros(latencies, 0.99)

	runChecks(sp, res, runs)

	if opts.Twin && !sp.Cluster {
		logf("scenario %s: twin replay", sp.Name)
		twinHash, twinOK, detail := runTwin(sp, runs)
		res.AddCheck("twin-replay", twinOK, detail)
		res.Fingerprint = fingerprint(sp, runs, twinHash)
	} else {
		res.Fingerprint = fingerprint(sp, runs, "")
	}

	if opts.Record {
		res.RecordedBatches = make(map[string][][]stream.Item, len(runs))
		for _, r := range runs {
			res.RecordedBatches[r.name] = r.batches
		}
	}
	logf("scenario %s: done: pass=%v items/s=%.0f p99=%.0fµs", sp.Name, res.Pass, res.ItemsPerSec, res.P99IngestMicros)
	return res, nil
}

// forEachRun applies f to every stream run with bounded concurrency,
// canceling the rest on the first error.
func forEachRun(ctx context.Context, workers int, runs []*streamRun, f func(context.Context, *streamRun) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, r := range runs {
		wg.Add(1)
		go func(r *streamRun) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			if err := f(ctx, r); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("stream %s: %w", r.name, err)
					cancel()
				}
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	return firstErr
}

// ingestOne drives one replica: generate, batch, send (round-robining
// cluster batches across edges), track exact truth counts, and apply
// lifecycle churn when the spec asks for it.
func ingestOne(ctx context.Context, sp *Spec, ingest []Target, clients []*Client, root *Client, r *streamRun, record bool) error {
	items := r.spec.Generate(sp, r.replica)
	senders := make([]*Sender, len(ingest))
	for i := range ingest {
		senders[i] = NewSender(clients[i], ingest[i], r.name, r.spec.Transport)
	}
	defer func() {
		for _, s := range senders {
			s.Close() //nolint:errcheck // best-effort goodbye
		}
	}()
	batchIdx, sinceChurn := 0, 0
	evictNext := true
	for off := 0; off < len(items); off += r.spec.Batch {
		end := min(off+r.spec.Batch, len(items))
		batch := items[off:end]
		s := senders[batchIdx%len(senders)]
		if err := s.Send(ctx, batch); err != nil {
			return err
		}
		for _, x := range batch {
			r.truth[x]++
		}
		r.n += int64(len(batch))
		if record {
			cp := make([]stream.Item, len(batch))
			copy(cp, batch)
			r.batches = append(r.batches, cp)
		}
		batchIdx++
		if sp.EvictEvery > 0 {
			sinceChurn++
			if sinceChurn >= sp.EvictEvery {
				sinceChurn = 0
				if err := churn(ctx, root, r, &evictNext); err != nil {
					return err
				}
			}
		}
	}
	for _, s := range senders {
		r.send.HTTPBatches += s.Stats.HTTPBatches
		r.send.TCPFrames += s.Stats.TCPFrames
		r.send.Retries += s.Stats.Retries
		r.send.Latencies = append(r.send.Latencies, s.Stats.Latencies...)
	}
	return nil
}

// churn round-trips the stream through the cold tier mid-ingest:
// alternating admin evict (the next batch faults the stream back in
// through the ingest path) and explicit fault-in (a no-op when a batch
// already won the race — both orders are exercised across the run).
func churn(ctx context.Context, root *Client, r *streamRun, evictNext *bool) error {
	if *evictNext {
		changed, err := root.AdminEvict(ctx, r.name)
		if err != nil {
			return fmt.Errorf("admin evict: %w", err)
		}
		if changed {
			r.evictIssued++
		}
	} else {
		if _, err := root.AdminFaultIn(ctx, r.name); err != nil {
			return fmt.Errorf("admin faultin: %w", err)
		}
	}
	*evictNext = !*evictNext
	return nil
}

// releaseWithRetry issues one release, retrying the transient refusals
// (in-flight ceiling, fault-in unavailability) that spend no budget.
func releaseWithRetry(ctx context.Context, root *Client, name string, eps, delta float64) (*ReleaseDoc, error) {
	for attempt := 0; ; attempt++ {
		doc, err := root.Release(ctx, name, eps, delta)
		if err == nil {
			return doc, nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && transientRelease(apiErr) {
			if berr := backoff(ctx, attempt); berr != nil {
				return nil, berr
			}
			continue
		}
		return nil, err
	}
}

// transientRelease classifies refusals that spend no budget and clear on
// retry: the in-flight release ceiling (429 without the budget message)
// and fault-in unavailability (503).
func transientRelease(e *APIError) bool {
	if e.Status == http.StatusServiceUnavailable {
		return true
	}
	return e.Status == http.StatusTooManyRequests && !strings.Contains(e.Msg, "budget exhausted")
}

// stormOne hammers one stream with StormWorkers concurrent ε=StormEps
// releases until the accountant refuses every worker.
func stormOne(ctx context.Context, root *Client, sp *Spec, r *streamRun) error {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var hardErr error
	for w := 0; w < sp.StormWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				doc, err := root.Release(ctx, r.name, sp.StormEps, sp.ReleaseDelta)
				if err == nil {
					mu.Lock()
					r.stormSuccesses++
					r.docs = append(r.docs, doc)
					mu.Unlock()
					attempt = 0
					continue
				}
				var apiErr *APIError
				if errors.As(err, &apiErr) {
					if apiErr.Status == http.StatusTooManyRequests && strings.Contains(apiErr.Msg, "budget exhausted") {
						mu.Lock()
						r.stormFinalMsg = apiErr.Msg
						mu.Unlock()
						return
					}
					if transientRelease(apiErr) {
						if backoff(ctx, attempt) != nil {
							return
						}
						continue
					}
				}
				mu.Lock()
				if hardErr == nil {
					hardErr = err
				}
				mu.Unlock()
				return
			}
		}()
	}
	wg.Wait()
	return hardErr
}

// pickProbes selects the items whose estimates the checks read: the
// ProbeTop largest true counts (ties to the smaller item — the released
// top-k candidates) plus 16 deterministic spread items that exercise the
// light tail (including never-seen items, whose estimates must be
// exactly zero under the envelope).
func pickProbes(sp *Spec, r *streamRun) []probe {
	type kv struct {
		item stream.Item
		cnt  int64
	}
	top := make([]kv, 0, len(r.truth))
	for x, c := range r.truth {
		top = append(top, kv{x, c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].cnt != top[j].cnt {
			return top[i].cnt > top[j].cnt
		}
		return top[i].item < top[j].item
	})
	if len(top) > sp.ProbeTop {
		top = top[:sp.ProbeTop]
	}
	probes := make([]probe, 0, len(top)+16)
	seen := make(map[stream.Item]bool, len(top)+16)
	for _, t := range top {
		probes = append(probes, probe{item: t.item, truth: t.cnt, heavy: true})
		seen[t.item] = true
	}
	lcg := sp.ReplicaSeed(r.name) | 1
	for i := 0; i < 16; i++ {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		x := stream.Item(lcg%r.spec.Universe + 1)
		if seen[x] {
			continue
		}
		seen[x] = true
		probes = append(probes, probe{item: x, truth: r.truth[x]})
	}
	return probes
}

// runChecks evaluates every scenario assertion against the collected
// state and fills the frontier points.
func runChecks(sp *Spec, res *Result, runs []*streamRun) {
	// Item conservation: in standalone runs the server's per-stream
	// ingested count must equal the driver's — all-or-nothing refusals
	// mean retries can never double-ingest. Cluster roots hold folds,
	// not raw items, so there the fold counter must be live instead.
	if !sp.Cluster {
		bad := ""
		for _, r := range runs {
			if r.after.Items != r.n {
				bad = fmt.Sprintf("stream %s: server ingested %d, driver sent %d", r.name, r.after.Items, r.n)
				break
			}
		}
		res.AddCheck("items-conserved", bad == "", orDefault(bad, fmt.Sprintf("%d items across %d streams, every batch counted once", res.Items, len(runs))))
	} else {
		bad := ""
		for _, r := range runs {
			if r.after.Nodes == 0 {
				bad = fmt.Sprintf("stream %s: root folded no summaries", r.name)
				break
			}
		}
		res.AddCheck("cluster-fold", bad == "", orDefault(bad, fmt.Sprintf("root folded %d summaries across %d streams", res.SummariesFolded, len(runs))))
	}

	// Lemma 8 envelope: true − N/(k+1) ≤ estimate ≤ true, for the
	// realized N of each stream (fleet-wide N in cluster runs, where the
	// Corollary 18 merge preserves the same bound). The upper side doubles
	// as the zero-double-count witness: a replayed batch or a re-folded
	// summary would push an estimate past its true count.
	envBad, probed := "", 0
	for _, r := range runs {
		slack := r.n / int64(r.spec.K+1)
		for _, p := range r.probes {
			est := r.estimates[p.item]
			probed++
			if est > p.truth || est < p.truth-slack {
				envBad = fmt.Sprintf("stream %s item %d: estimate %d outside [%d−%d, %d]", r.name, p.item, est, p.truth, slack, p.truth)
				break
			}
		}
		if envBad != "" {
			break
		}
	}
	res.AddCheck("lemma8-envelope", envBad == "", orDefault(envBad, fmt.Sprintf("%d probes within N/(k+1) of truth", probed)))

	// Budget ledger: spent budget is exactly the granted sum. Catalog
	// parameters are dyadic, so == is the right comparison — any drift is
	// an accountant bug, not float noise.
	ledgerBad := ""
	for _, r := range runs {
		wantEps, wantDelta := grantedSpend(sp, r)
		gotEps := r.remBeforeEps - r.after.RemainingEps
		gotDelta := r.remBeforeDelta - r.after.RemainingDelta
		if gotEps != wantEps || gotDelta != wantDelta {
			ledgerBad = fmt.Sprintf("stream %s: ledger spent (ε=%.17g, δ=%.17g), harness granted (ε=%.17g, δ=%.17g)", r.name, gotEps, gotDelta, wantEps, wantDelta)
			break
		}
	}
	res.AddCheck("budget-ledger", ledgerBad == "", orDefault(ledgerBad, "accountant ledger matches granted ε and δ bit for bit"))

	if sp.ExpectThrottle {
		res.AddCheck("throttled", res.ThrottledIngest > 0,
			fmt.Sprintf("server refused %d ingest calls at the rate ceiling (%d driver retries)", res.ThrottledIngest, res.Retries))
	}
	if sp.EvictEvery > 0 {
		var issued int64
		for _, r := range runs {
			issued += r.evictIssued
		}
		churnBad := ""
		if res.Evictions != issued {
			churnBad = fmt.Sprintf("server counted %d evictions, driver issued %d", res.Evictions, issued)
		} else if res.FaultIns != issued {
			churnBad = fmt.Sprintf("server counted %d fault-ins for %d evictions (each offload must fault back in exactly once)", res.FaultIns, issued)
		} else if issued == 0 {
			churnBad = "no evictions materialized"
		}
		res.AddCheck("evict-churn", churnBad == "", orDefault(churnBad, fmt.Sprintf("%d evict/fault-in round trips through the cold tier", issued)))
	}
	if sp.BudgetStorm {
		stormBad := ""
		for _, r := range runs {
			want := StormExpected(r.spec.Eps, sp.StormEps)
			if r.stormSuccesses != want {
				stormBad = fmt.Sprintf("stream %s: %d storm releases admitted, accountant arithmetic admits exactly %d", r.name, r.stormSuccesses, want)
				break
			}
			if !strings.Contains(r.stormFinalMsg, "budget exhausted") {
				stormBad = fmt.Sprintf("stream %s: final refusal was %q, want the budget-exhausted error", r.name, r.stormFinalMsg)
				break
			}
		}
		res.AddCheck("storm-exhaustion", stormBad == "", orDefault(stormBad, fmt.Sprintf("every stream admitted exactly %d ε=%g releases then refused", StormExpected(runs[0].spec.Eps, sp.StormEps), sp.StormEps)))
	}

	buildFrontier(sp, res, runs)
}

// grantedSpend is the exact (ε, δ) the harness was granted for one
// stream: the grid, or the realized storm successes.
func grantedSpend(sp *Spec, r *streamRun) (eps, delta float64) {
	if sp.BudgetStorm {
		for i := 0; i < r.stormSuccesses; i++ {
			eps += sp.StormEps
			delta += sp.ReleaseDelta
		}
		return eps, delta
	}
	for _, e := range sp.ReleaseEps {
		eps += e
		delta += sp.ReleaseDelta
	}
	return eps, delta
}

// buildFrontier fills the per-ε error profile and asserts the release
// error envelope: for every probed heavy item present in a released
// document, |released − true| ≤ N/(k+1) + 40×noise_scale. The 40× tail
// bound holds with overwhelming probability for every registered
// mechanism (Laplace, geometric, Gaussian), seeded or not.
func buildFrontier(sp *Spec, res *Result, runs []*streamRun) {
	grid := sp.ReleaseEps
	if sp.BudgetStorm {
		grid = []float64{sp.StormEps}
	}
	relBad := ""
	for gi, eps := range grid {
		pt := FrontierPoint{Eps: eps, Delta: sp.ReleaseDelta}
		var absSum float64
		var absN, present, heavies int
		for _, r := range runs {
			if gi >= len(r.docs) {
				continue
			}
			doc := r.docs[gi]
			pt.Releases++
			if ns := doc.NoiseScale(); ns > pt.NoiseScale {
				pt.NoiseScale = ns
			}
			slack := float64(r.n) / float64(r.spec.K+1)
			if slack > pt.Envelope {
				pt.Envelope = slack
			}
			bound := slack + 40*doc.NoiseScale() + 1e-9
			for _, p := range r.probes {
				if !p.heavy {
					continue
				}
				heavies++
				val, ok := doc.Items[strconv.FormatUint(uint64(p.item), 10)]
				if !ok {
					continue
				}
				present++
				abs := math.Abs(val - float64(p.truth))
				absSum += abs
				absN++
				if abs > pt.MaxAbsErr {
					pt.MaxAbsErr = abs
				}
				if abs > bound && relBad == "" {
					relBad = fmt.Sprintf("stream %s ε=%g item %d: released %.1f vs true %d, |err| %.1f > envelope %.1f", r.name, eps, p.item, val, p.truth, abs, bound)
				}
			}
		}
		if absN > 0 {
			pt.MeanAbsErr = absSum / float64(absN)
		}
		if heavies > 0 {
			pt.ProbeCoverage = float64(present) / float64(heavies)
		}
		res.Frontier = append(res.Frontier, pt)
	}
	res.AddCheck("release-error-envelope", relBad == "", orDefault(relBad, fmt.Sprintf("released estimates within N/(k+1)+40·scale at %d grid points", len(grid))))
}

// fingerprint digests the run's deterministic facts, sorted by stream
// name: realized N and the budget ledger always; probe estimates and the
// twin hash only when the topology reproduces them exactly (standalone).
func fingerprint(sp *Spec, runs []*streamRun, twinHash string) string {
	byName := make(map[string]*streamRun, len(runs))
	for _, r := range runs {
		byName[r.name] = r
	}
	h := sha256.New()
	fmt.Fprintf(h, "scenario:%s seed:%d\n", sp.Name, sp.Seed)
	for _, name := range sp.sortedNames() {
		r := byName[name]
		if r == nil {
			continue
		}
		fmt.Fprintf(h, "%s|%d|%.17g|%.17g\n", name, r.n, r.after.RemainingEps, r.after.RemainingDelta)
		if sp.Fingerprintable() {
			for _, p := range r.probes {
				fmt.Fprintf(h, "%d:%d ", p.item, r.estimates[p.item])
			}
			fmt.Fprintln(h)
		}
	}
	if twinHash != "" {
		fmt.Fprintf(h, "twin:%s\n", twinHash)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// orDefault returns s, or def when s is empty.
func orDefault(s, def string) string {
	if s != "" {
		return s
	}
	return def
}
