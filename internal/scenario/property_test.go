package scenario

import (
	"math"
	"testing"

	"dpmg"
	"dpmg/internal/stream"
)

// TestPropertyLemma8AcrossCatalog is the property test the catalog exists
// to feed: every scenario's generated workloads, pushed through plain MG
// sketches over a k grid, must stay inside the Lemma 8 envelope
// (truth − N/(k+1) ≤ estimate ≤ truth) for every item, and the observed
// worst-case error must be monotone non-increasing in k. Table-driven over
// the whole catalog so a new scenario is covered the day it lands.
func TestPropertyLemma8AcrossCatalog(t *testing.T) {
	kGrid := []int{8, 16, 32, 64, 128}
	specs, err := Catalog(TierTiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			for ti := range sp.Streams {
				ss := &sp.Streams[ti]
				items := ss.Generate(sp, 0)
				truth := make(map[stream.Item]int64, ss.Universe)
				for _, x := range items {
					truth[x]++
				}
				n := int64(len(items))
				prevMax := int64(math.MaxInt64)
				for _, k := range kGrid {
					sk := dpmg.NewSketch(k, ss.Universe)
					sk.UpdateBatch(items)
					bound := n / (int64(k) + 1)
					var maxErr int64
					for x, c := range truth {
						est := sk.Estimate(x)
						if est > c {
							t.Fatalf("%s k=%d item %d: estimate %d over truth %d (no over-counting, ever)",
								ss.Name, k, x, est, c)
						}
						if c-est > bound {
							t.Fatalf("%s k=%d item %d: error %d trips Lemma 8 bound %d (N=%d)",
								ss.Name, k, x, c-est, bound, n)
						}
						if c-est > maxErr {
							maxErr = c - est
						}
					}
					// The adversarial model is the Fact 7 lower-bound instance
					// built for the spec's own k; at other k its realized
					// error is only bounded, not monotone, so the
					// monotonicity claim covers the stochastic workloads.
					if ss.Model != "adversarial" && maxErr > prevMax {
						t.Errorf("%s: max error grew from %d to %d as k rose to %d (not monotone)",
							ss.Name, prevMax, maxErr, k)
					}
					prevMax = maxErr
				}
			}
		})
	}
}

// TestPropertyReleaseEnvelope checks the released (noised) histograms at
// the default ε grid: for every histogram entry with known truth, the
// released value stays within the Lemma 8 envelope plus a generous noise
// allowance (40 × the mechanism's own noise scale — the same witness the
// live harness's release-error-envelope check uses).
func TestPropertyReleaseEnvelope(t *testing.T) {
	specs, err := Catalog(TierTiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			for ti := range sp.Streams {
				ss := &sp.Streams[ti]
				items := ss.Generate(sp, 0)
				truth := make(map[stream.Item]int64, ss.Universe)
				for _, x := range items {
					truth[x]++
				}
				n := float64(len(items))
				sk := dpmg.NewSketch(ss.K, ss.Universe)
				sk.UpdateBatch(items)
				for i, eps := range defaultReleaseEps() {
					res, rerr := dpmg.ReleaseDetailed(sk,
						dpmg.Params{Eps: eps, Delta: DefaultReleaseDelta},
						dpmg.WithSeed(TwinSeed(sp, ss.Name, i)))
					if rerr != nil {
						t.Fatalf("%s ε=%g: %v", ss.Name, eps, rerr)
					}
					scale := res.Meta["noise_scale"]
					if scale <= 0 {
						t.Fatalf("%s ε=%g: mechanism %s reported no noise_scale", ss.Name, eps, res.Mechanism)
					}
					allow := n/float64(ss.K+1) + 40*scale + 1e-9
					for x, v := range res.Histogram {
						if d := math.Abs(v - float64(truth[x])); d > allow {
							t.Errorf("%s ε=%g item %d: released %g vs truth %d, |err| %g over allowance %g",
								ss.Name, eps, x, v, truth[x], d, allow)
						}
					}
					// Determinism: the same seed must reproduce the release
					// byte for byte (the twin comparison depends on it).
					again, rerr := dpmg.ReleaseDetailed(sk,
						dpmg.Params{Eps: eps, Delta: DefaultReleaseDelta},
						dpmg.WithSeed(TwinSeed(sp, ss.Name, i)))
					if rerr != nil {
						t.Fatalf("%s ε=%g rerun: %v", ss.Name, eps, rerr)
					}
					if RenderRelease(ss.Name, res, eps, DefaultReleaseDelta) !=
						RenderRelease(ss.Name, again, eps, DefaultReleaseDelta) {
						t.Errorf("%s ε=%g: seeded release not reproducible", ss.Name, eps)
					}
				}
			}
		})
	}
}
