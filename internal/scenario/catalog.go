package scenario

import "fmt"

// Tier selects the size class of a catalog scenario: the same hostile
// shape at different offered loads.
type Tier string

// Tiers. Every tier runs every check — only N changes, and the checks
// scale with the realized N, so a tiny run is as strict as a full one.
const (
	// TierTiny is sized for in-process unit tests under -race.
	TierTiny Tier = "tiny"
	// TierSmoke is sized for the CI scenario-smoke job (seconds per
	// scenario against real server processes).
	TierSmoke Tier = "smoke"
	// TierFull is sized for local frontier baselines (PERFORMANCE.md).
	TierFull Tier = "full"
)

// mult is the per-tier load multiplier applied to every stream length.
func (t Tier) mult() (int, error) {
	switch t {
	case TierTiny:
		return 1, nil
	case TierSmoke:
		return 5, nil
	case TierFull:
		return 40, nil
	}
	return 0, fmt.Errorf("scenario: unknown tier %q (tiny | smoke | full)", t)
}

// Names lists the catalog scenarios in canonical order. CI's required-row
// check iterates this list: a scenario missing from SCENARIO_core.json is
// a build failure, not a thinner artifact.
func Names() []string {
	return []string{
		"flash-crowd",
		"adversarial-drift",
		"heavy-tail-tenants",
		"evict-thrash",
		"budget-storm",
		"cluster-fanin",
	}
}

// Catalog returns every named scenario at the given tier.
func Catalog(tier Tier) ([]*Spec, error) {
	var specs []*Spec
	for _, name := range Names() {
		sp, err := Lookup(name, tier)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Lookup builds one named catalog scenario at the given tier.
//
// Every ε and δ in the catalog is dyadic (exactly representable in
// binary floating point), so the budget-ledger check compares the
// accountant's running sums bitwise instead of within a tolerance.
func Lookup(name string, tier Tier) (*Spec, error) {
	m, err := tier.mult()
	if err != nil {
		return nil, err
	}
	var sp *Spec
	switch name {
	case "flash-crowd":
		// A rate-limited tenant fleet hit by a synchronized crowd: the
		// QoS token buckets must refuse (429 / AckRateLimited) without
		// perturbing the background tenants' sketch state, and the
		// all-or-nothing refusals must keep the accepted item sequence —
		// and so the Lemma 8 envelope — exactly intact.
		sp = &Spec{
			Name: name, Seed: 101, ExpectThrottle: true,
			Streams: []StreamSpec{
				{
					Name: "bg", Count: 4, K: 64, Universe: 4096, Shards: 4,
					Eps: 8, Delta: 1.0 / (1 << 10),
					Model: "uniform", Items: 1000 * m, Batch: 500,
					Transport: TransportMixed,
				},
				{
					Name: "crowd", Count: 4, K: 64, Universe: 4096, Shards: 4,
					Eps: 8, Delta: 1.0 / (1 << 10),
					MaxIngestRate: 50_000, IngestBurst: 500,
					Model: "zipf", Skew: 1.2, Items: 800 * m, Batch: 500,
					Transport: TransportMixed,
				},
			},
		}
	case "adversarial-drift":
		// The paper's matching lower-bound instance (Fact 7: k+1 items
		// round-robin, maximal decrement pressure) next to non-stationary
		// drift whose heavy set rotates phase by phase. Both push the MG
		// sketch to the N/(k+1) edge of the Lemma 8 envelope — the check
		// must hold exactly at the bound, not just for friendly skew.
		sp = &Spec{
			Name: name, Seed: 202,
			Streams: []StreamSpec{
				{
					Name: "adv", Count: 3, K: 64, Universe: 4096, Shards: 4,
					Eps: 8, Delta: 1.0 / (1 << 10),
					Model: "adversarial", Items: 1500 * m, Batch: 375,
					Transport: TransportTCP,
				},
				{
					Name: "drift", Count: 3, K: 64, Universe: 4096, Shards: 4,
					Eps: 8, Delta: 1.0 / (1 << 10),
					Model: "drift", Phases: 4, Heavy: 8, HeavyFrac: 0.7,
					Items: 1500 * m, Batch: 375,
					Transport: TransportMixed,
				},
			},
		}
	case "heavy-tail-tenants":
		// A multi-tenant aggregator's real shape: one whale tenant on the
		// TCP datapath, a few mid-size packet traces on mixed transport,
		// and a long tail of mice over HTTP — 21 streams driven
		// concurrently, checking that cross-stream concurrency never
		// leaks items between sketches (each stream's envelope holds for
		// its own N).
		sp = &Spec{
			Name: name, Seed: 303, Workers: 8,
			Streams: []StreamSpec{
				{
					Name: "whale", K: 128, Universe: 65536, Shards: 4,
					Eps: 8, Delta: 1.0 / (1 << 10),
					Model: "heavytail", Heavy: 16, HeavyFrac: 0.8,
					Items: 4000 * m, Batch: 1000,
					Transport: TransportTCP,
				},
				{
					Name: "mid", Count: 4, K: 64, Universe: 8192, Shards: 4,
					Eps: 8, Delta: 1.0 / (1 << 10),
					Model: "packets", Heavy: 12, HeavyFrac: 0.4,
					Items: 1000 * m, Batch: 500,
					Transport: TransportMixed,
				},
				{
					Name: "mouse", Count: 16, K: 16, Universe: 1024, Shards: 2,
					Eps: 8, Delta: 1.0 / (1 << 10),
					Model: "uniform", Items: 250 * m, Batch: 125,
					Transport: TransportHTTP,
				},
			},
		}
	case "evict-thrash":
		// Lifecycle churn under live ingest: every second batch the
		// driver offloads the stream through the admin evict lever and
		// faults it back in, so counters round-trip the cold tier
		// mid-stream. The envelope and the twin comparison prove the
		// offload codec loses nothing.
		sp = &Spec{
			Name: name, Seed: 404, EvictEvery: 2,
			Streams: []StreamSpec{
				{
					Name: "churn", Count: 6, K: 64, Universe: 4096, Shards: 4,
					Eps: 8, Delta: 1.0 / (1 << 10),
					Model: "zipf", Skew: 1.1, Items: 1000 * m, Batch: 250,
					Transport: TransportMixed,
				},
			},
		}
	case "budget-storm":
		// Release-side hostility: per stream, several concurrent clients
		// hammer ε = 0.5 releases until the accountant refuses. The
		// admitted count must be exactly budget/storm_eps = 8 (dyadic
		// arithmetic, no float drift), the in-flight ceiling must throttle
		// (spending nothing), and the final refusal must be the budget
		// error, not a lost update.
		sp = &Spec{
			Name: name, Seed: 505,
			BudgetStorm: true, StormEps: 0.5, StormWorkers: 3,
			Streams: []StreamSpec{
				{
					Name: "storm", Count: 6, K: 64, Universe: 4096, Shards: 4,
					Eps: 4, Delta: 1.0 / (1 << 10),
					MaxInflightReleases: 2,
					Model:               "zipf", Skew: 1.1, Items: 500 * m, Batch: 250,
					Transport: TransportHTTP,
				},
			},
		}
	case "cluster-fanin":
		// The Corollary 18 topology: batches round-robin across two edge
		// processes, edges cut and ship summaries to the root, and after
		// an edge drain the root's folded estimates must obey the same
		// N/(k+1) envelope for the fleet-wide N — merging never
		// over-counts and the noise calibration is fleet-size independent.
		sp = &Spec{
			Name: name, Seed: 606, Cluster: true,
			Streams: []StreamSpec{
				{
					Name: "fan", Count: 6, K: 64, Universe: 4096, Shards: 4,
					Eps: 8, Delta: 1.0 / (1 << 10),
					Model: "zipf", Skew: 1.1, Items: 1000 * m, Batch: 250,
					Transport: TransportMixed,
				},
			},
		}
	default:
		return nil, fmt.Errorf("scenario: unknown scenario %q (catalog: %v)", name, Names())
	}
	sp.Tier = string(tier)
	if err := sp.Normalize(); err != nil {
		return nil, fmt.Errorf("scenario: catalog bug: %w", err)
	}
	return sp, nil
}
