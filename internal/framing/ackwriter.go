package framing

import "bufio"

// AckWriter writes one connection's ack frames with pipeline-aware
// batching. Each ack is appended to the buffered writer; the flush is
// deferred while the connection's read buffer still holds unread bytes,
// because those bytes can only be the next pipelined frame — the peer is
// demonstrably not blocked waiting for this ack, so the acks for a whole
// pipelined burst can share one write syscall. A synchronous
// request/response peer always presents an empty read buffer when its
// frame has been consumed, so its ack flushes immediately and round-trip
// latency is unchanged.
//
// Deferring an ack behind buffered input can never deadlock a conforming
// peer: the client contract (see Client) requires a peer that pipelines
// frames to drain acks on a separate goroutine rather than between sends.
type AckWriter struct {
	bw  *bufio.Writer
	br  *bufio.Reader
	buf []byte
}

// NewAckWriter couples a connection's buffered writer with the read buffer
// that gates the flush decision.
func NewAckWriter(bw *bufio.Writer, br *bufio.Reader) *AckWriter {
	return &AckWriter{bw: bw, br: br}
}

// WriteAck appends one ack frame and flushes unless pipelined input is
// already buffered.
func (w *AckWriter) WriteAck(a Ack) error {
	w.buf = AppendAck(w.buf[:0], a)
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	if w.br.Buffered() > 0 {
		return nil
	}
	return w.bw.Flush()
}

// Flush forces any deferred acks out — call before closing the connection
// so a final refusal is delivered even when more frames were pending.
func (w *AckWriter) Flush() error {
	return w.bw.Flush()
}
