package framing

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestDialTimeout pins the timeout plumbing without depending on how the
// host network treats unroutable addresses (some CI sandboxes transparently
// proxy them): an already-expired deadline must refuse even a live local
// listener, and a generous one must connect to it.
func TestDialTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	if _, err := DialTimeout(ln.Addr().String(), time.Nanosecond); err == nil {
		t.Fatal("DialTimeout with an already-expired deadline succeeded")
	}
	c, err := DialTimeout(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("DialTimeout to a live listener: %v", err)
	}
	c.conn.Close() // bare close: the listener does not speak the protocol
}

// TestDialContextCanceled pins that a canceled context aborts the connect.
func TestDialContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, "127.0.0.1:0"); err == nil {
		t.Fatal("DialContext with canceled context succeeded")
	}
}

// TestRedialerSurvivesLateListener pins the reconnect loop an edge relies
// on: the first attempts fail (nothing listens), the listener appears, and
// Dial returns a connected client without the caller hot-looping.
func TestRedialerSurvivesLateListener(t *testing.T) {
	// Reserve an address, then release it so the first dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var attempts atomic.Int64
	r := Redialer{
		Addr: addr, Timeout: 200 * time.Millisecond,
		Min: 5 * time.Millisecond, Max: 20 * time.Millisecond,
		OnError: func(error) { attempts.Add(1) },
	}
	lateUp := make(chan struct{})
	go func() {
		// Come up only after at least one failed attempt was observed.
		for attempts.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			close(lateUp)
			return
		}
		defer ln2.Close()
		close(lateUp)
		conn, err := ln2.Accept()
		if err == nil {
			// Drain the preamble so the client-side write succeeds.
			buf := make([]byte, len(Preamble))
			conn.Read(buf) //nolint:errcheck // best-effort drain
			conn.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := r.Dial(ctx)
	<-lateUp
	if err != nil {
		t.Fatalf("Redialer.Dial: %v (after %d failed attempts)", err, attempts.Load())
	}
	c.Close()
	if attempts.Load() == 0 {
		t.Fatal("listener raced up before any attempt failed; test proved nothing")
	}
	if r.delay != 0 {
		t.Fatalf("successful dial must reset the backoff schedule, delay = %v", r.delay)
	}
}

// TestRedialerContextEndsWait pins that cancellation interrupts the
// backoff sleep rather than waiting it out.
func TestRedialerContextEndsWait(t *testing.T) {
	// A reserved-then-released local port refuses instantly, so the loop
	// reaches its hour-long backoff sleep at once.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	r := Redialer{Addr: addr, Timeout: 20 * time.Millisecond, Min: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = r.Dial(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Dial held for %v despite a 100ms context", elapsed)
	}
}

// TestRedialerBackoffCaps pins the doubling schedule: min, doubled, capped.
func TestRedialerBackoffCaps(t *testing.T) {
	r := Redialer{Min: 10 * time.Millisecond, Max: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35} // ms
	for i, w := range want {
		if got := r.backoffStep(); got != w*time.Millisecond {
			t.Fatalf("step %d: got %v, want %v", i, got, w*time.Millisecond)
		}
	}
	r.delay = 0 // what a successful dial does
	if got := r.backoffStep(); got != 10*time.Millisecond {
		t.Fatalf("after reset: got %v, want 10ms", got)
	}
}

// TestExchangeRoundTrip pins the generic synchronous frame round trip the
// cluster protocol builds on, including non-OK acks passed through
// unclassified.
func TestExchangeRoundTrip(t *testing.T) {
	cp, sp := net.Pipe()
	defer sp.Close()
	done := make(chan error, 1)
	go func() {
		// Minimal peer: preamble, one frame, one deliberately non-OK ack
		// echoing the payload length in info.
		if err := ReadPreamble(sp); err != nil {
			done <- err
			return
		}
		h, err := ReadHeader(sp)
		if err != nil {
			done <- err
			return
		}
		payload := make([]byte, h.Len)
		if _, err := readFull(sp, payload); err != nil {
			done <- err
			return
		}
		ack := AppendAck(nil, Ack{Seq: h.Seq, Code: AckDuplicate, Info: uint64(h.Len), Msg: "already folded"})
		_, err = sp.Write(ack)
		done <- err
	}()
	c, err := NewClient(cp)
	if err != nil {
		t.Fatal(err)
	}
	// Close sp before c: Close writes a goodbye frame, and with the peer
	// goroutine done an open pipe would absorb it never — a closed one
	// errors it immediately.
	defer c.Close()
	defer sp.Close()
	ack, err := c.Exchange(TypeSummary, []byte("payload-bytes"))
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if ack.Code != AckDuplicate || ack.Info != uint64(len("payload-bytes")) || ack.Msg != "already folded" {
		t.Fatalf("ack = %+v, want duplicate/info=%d", ack, len("payload-bytes"))
	}
	if err := <-done; err != nil {
		t.Fatalf("peer: %v", err)
	}
}

// readFull is io.ReadFull without importing io in this file twice.
func readFull(r net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
