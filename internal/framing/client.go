package framing

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"dpmg/internal/stream"
)

// Client speaks the streaming-ingest protocol from the edge side: it
// writes the preamble on connect, binds to a stream once, and then ships
// raw item frames. Two usage modes are supported:
//
//   - Synchronous: Send writes one data frame and waits for its ack — the
//     simplest way to get HTTP-like request/response semantics with none
//     of the per-request HTTP tax.
//   - Pipelined: Push writes frames without waiting, Flush pushes them to
//     the socket, and ReadAck drains acknowledgments (in frame order) from
//     a separate goroutine. This is how an edge saturates the link: the
//     per-frame cost is one buffered write, and acks overlap with the next
//     frames in flight.
//
// A Client is not safe for concurrent use by multiple goroutines, with one
// deliberate exception: one goroutine may call Push/Flush while another
// calls ReadAck (the write and read halves share no state beyond the
// socket).
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	seq  uint32
	// scratch is the reusable frame-encoding buffer; it grows to the
	// largest pushed frame and is reused for every subsequent one. ackBuf
	// is its read-side twin — the reusable ack-decoding buffer — touched
	// only by the ack-reading goroutine, so the Push/Flush ∥ ReadAck
	// concurrency exception holds.
	scratch []byte
	ackBuf  []byte
}

// Dial connects to a dpmg-server streaming ingest listener (-ingest-addr)
// and writes the protocol preamble. It blocks for as long as the operating
// system's connect takes; prefer DialTimeout or DialContext anywhere a
// peer may be down (an edge must never hang on a dead root).
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialTimeout is Dial with a connect timeout: a peer that is down or
// unreachable fails within the deadline instead of holding the caller for
// the kernel's (minutes-long) connect timeout. A non-positive timeout
// means no limit.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return DialContext(ctx, addr)
}

// DialContext is Dial under a caller-supplied context: cancellation or a
// deadline aborts the connect (not the established connection).
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (TCP, Unix socket, or an
// in-memory pipe in tests), writing the protocol preamble.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 1<<16),
		br:   bufio.NewReaderSize(conn, 1<<16),
	}
	if err := WritePreamble(c.bw); err != nil {
		return nil, err
	}
	return c, nil
}

// AckError is a non-OK acknowledgment surfaced as an error by the
// synchronous helpers (Bind, Send, Close).
type AckError struct {
	// Ack is the refusing acknowledgment.
	Ack Ack
}

// Error formats the refusal.
func (e *AckError) Error() string {
	if e.Ack.Msg != "" {
		return fmt.Sprintf("framing: server refused frame %d: %s: %s", e.Ack.Seq, e.Ack.Code, e.Ack.Msg)
	}
	return fmt.Sprintf("framing: server refused frame %d: %s", e.Ack.Seq, e.Ack.Code)
}

// Bind binds the connection to the named stream and waits for the ack,
// returning an *AckError on refusal. Binding again re-routes subsequent
// data frames to the newly named stream.
func (c *Client) Bind(streamName string) error {
	if len(streamName) > MaxNameLen {
		return fmt.Errorf("framing: stream name length %d exceeds %d", len(streamName), MaxNameLen)
	}
	c.seq++
	c.scratch = AppendHeader(c.scratch[:0], Header{Type: TypeBind, Seq: c.seq, Len: uint32(len(streamName))})
	c.scratch = append(c.scratch, streamName...)
	if _, err := c.bw.Write(c.scratch); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.expectOK()
}

// Push writes one data frame without waiting for its ack, returning the
// frame's sequence number. Call Flush before blocking on acks.
func (c *Client) Push(items []stream.Item) (uint32, error) {
	if len(items) > MaxDataItems {
		return 0, fmt.Errorf("framing: data frame of %d items exceeds %d", len(items), MaxDataItems)
	}
	c.seq++
	c.scratch = AppendHeader(c.scratch[:0], Header{Type: TypeData, Seq: c.seq, Len: uint32(8 * len(items))})
	for _, x := range items {
		c.scratch = binary.LittleEndian.AppendUint64(c.scratch, uint64(x))
	}
	if _, err := c.bw.Write(c.scratch); err != nil {
		return 0, err
	}
	return c.seq, nil
}

// Flush forces buffered frames onto the socket.
func (c *Client) Flush() error { return c.bw.Flush() }

// ReadAck reads the next acknowledgment in frame order. It does not
// translate refusals into errors — pipelined callers classify the code
// themselves.
func (c *Client) ReadAck() (Ack, error) { return c.readAck() }

// readAck decodes the next ack into the client's reusable buffer, so a
// steady ack-draining loop allocates only for refusal messages.
func (c *Client) readAck() (Ack, error) {
	a, buf, err := readAckBuf(c.br, c.ackBuf)
	c.ackBuf = buf
	return a, err
}

// Send writes one data frame and waits for its ack, returning an
// *AckError on refusal. All-or-nothing: on any error the frame's items
// were not ingested.
func (c *Client) Send(items []stream.Item) error {
	if _, err := c.Push(items); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.expectOK()
}

// expectOK reads the next ack, requiring it to match the last written
// sequence number with AckOK.
func (c *Client) expectOK() error {
	ack, err := c.readAck()
	if err != nil {
		return err
	}
	if ack.Seq != c.seq {
		return fmt.Errorf("framing: ack for frame %d, want %d (pipelined acks must be drained with ReadAck)", ack.Seq, c.seq)
	}
	if ack.Code != AckOK {
		return &AckError{Ack: ack}
	}
	return nil
}

// Exchange writes one frame of the given type and payload, flushes, and
// waits for its in-order ack, returning the ack without classifying
// refusals — callers that treat some non-OK codes as success (the
// aggregation tier's AckDuplicate) decide themselves. It is the generic
// synchronous round trip the typed helpers (Bind, Send) are special cases
// of; protocol extensions (internal/cluster) build on it.
func (c *Client) Exchange(t Type, payload []byte) (Ack, error) {
	c.seq++
	c.scratch = AppendHeader(c.scratch[:0], Header{Type: t, Seq: c.seq, Len: uint32(len(payload))})
	c.scratch = append(c.scratch, payload...)
	if _, err := c.bw.Write(c.scratch); err != nil {
		return Ack{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Ack{}, err
	}
	ack, err := c.readAck()
	if err != nil {
		return Ack{}, err
	}
	if ack.Seq != c.seq {
		return Ack{}, fmt.Errorf("framing: ack for frame %d, want %d (pipelined acks must be drained with ReadAck)", ack.Seq, c.seq)
	}
	return ack, nil
}

// Redialer dials a peer with capped exponential backoff until it succeeds
// or the context ends — the reconnect loop every edge needs to survive a
// root restart without hot-looping. The zero value is usable with just
// Addr set; Min and Max default to 100ms and 15s.
type Redialer struct {
	// Addr is the peer address to dial.
	Addr string
	// Timeout bounds each individual connect attempt (0: one Min..Max
	// backoff step, so a black-holed connect cannot stall the loop).
	Timeout time.Duration
	// Min is the first backoff delay (default 100ms).
	Min time.Duration
	// Max caps the backoff delay (default 15s).
	Max time.Duration
	// OnError, when set, observes each failed attempt (logging hook).
	OnError func(err error)

	// delay is the current backoff, reset by a successful dial.
	delay time.Duration
}

// backoffStep returns the delay to sleep after a failure and advances the
// doubling schedule.
func (r *Redialer) backoffStep() time.Duration {
	min, max := r.Min, r.Max
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 15 * time.Second
	}
	if r.delay < min {
		r.delay = min
	} else {
		r.delay *= 2
		if r.delay > max {
			r.delay = max
		}
	}
	return r.delay
}

// Dial attempts to connect until it succeeds or ctx ends, sleeping the
// current backoff between failures. A successful dial resets the backoff
// schedule for the next call.
func (r *Redialer) Dial(ctx context.Context) (*Client, error) {
	for {
		timeout := r.Timeout
		if timeout <= 0 {
			timeout = r.Max
			if timeout <= 0 {
				timeout = 15 * time.Second
			}
		}
		dialCtx, cancel := context.WithTimeout(ctx, timeout)
		c, err := DialContext(dialCtx, r.Addr)
		cancel()
		if err == nil {
			r.delay = 0
			return c, nil
		}
		if r.OnError != nil {
			r.OnError(err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(r.backoffStep()):
		}
	}
}

// Close performs the graceful close handshake (best effort) and closes the
// connection.
func (c *Client) Close() error {
	c.seq++
	c.scratch = AppendHeader(c.scratch[:0], Header{Type: TypeClose, Seq: c.seq, Len: 0})
	if _, err := c.bw.Write(c.scratch); err == nil {
		if err := c.bw.Flush(); err == nil {
			ReadAck(c.br) //nolint:errcheck // best-effort goodbye ack
		}
	}
	return c.conn.Close()
}
