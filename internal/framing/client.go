package framing

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"

	"dpmg/internal/stream"
)

// Client speaks the streaming-ingest protocol from the edge side: it
// writes the preamble on connect, binds to a stream once, and then ships
// raw item frames. Two usage modes are supported:
//
//   - Synchronous: Send writes one data frame and waits for its ack — the
//     simplest way to get HTTP-like request/response semantics with none
//     of the per-request HTTP tax.
//   - Pipelined: Push writes frames without waiting, Flush pushes them to
//     the socket, and ReadAck drains acknowledgments (in frame order) from
//     a separate goroutine. This is how an edge saturates the link: the
//     per-frame cost is one buffered write, and acks overlap with the next
//     frames in flight.
//
// A Client is not safe for concurrent use by multiple goroutines, with one
// deliberate exception: one goroutine may call Push/Flush while another
// calls ReadAck (the write and read halves share no state beyond the
// socket).
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	seq  uint32
	// scratch is the reusable frame-encoding buffer; it grows to the
	// largest pushed frame and is reused for every subsequent one.
	scratch []byte
}

// Dial connects to a dpmg-server streaming ingest listener (-ingest-addr)
// and writes the protocol preamble.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (TCP, Unix socket, or an
// in-memory pipe in tests), writing the protocol preamble.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 1<<16),
		br:   bufio.NewReaderSize(conn, 1<<16),
	}
	if err := WritePreamble(c.bw); err != nil {
		return nil, err
	}
	return c, nil
}

// AckError is a non-OK acknowledgment surfaced as an error by the
// synchronous helpers (Bind, Send, Close).
type AckError struct {
	// Ack is the refusing acknowledgment.
	Ack Ack
}

// Error formats the refusal.
func (e *AckError) Error() string {
	if e.Ack.Msg != "" {
		return fmt.Sprintf("framing: server refused frame %d: %s: %s", e.Ack.Seq, e.Ack.Code, e.Ack.Msg)
	}
	return fmt.Sprintf("framing: server refused frame %d: %s", e.Ack.Seq, e.Ack.Code)
}

// Bind binds the connection to the named stream and waits for the ack,
// returning an *AckError on refusal. Binding again re-routes subsequent
// data frames to the newly named stream.
func (c *Client) Bind(streamName string) error {
	if len(streamName) > MaxNameLen {
		return fmt.Errorf("framing: stream name length %d exceeds %d", len(streamName), MaxNameLen)
	}
	c.seq++
	c.scratch = AppendHeader(c.scratch[:0], Header{Type: TypeBind, Seq: c.seq, Len: uint32(len(streamName))})
	c.scratch = append(c.scratch, streamName...)
	if _, err := c.bw.Write(c.scratch); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.expectOK()
}

// Push writes one data frame without waiting for its ack, returning the
// frame's sequence number. Call Flush before blocking on acks.
func (c *Client) Push(items []stream.Item) (uint32, error) {
	if len(items) > MaxDataItems {
		return 0, fmt.Errorf("framing: data frame of %d items exceeds %d", len(items), MaxDataItems)
	}
	c.seq++
	c.scratch = AppendHeader(c.scratch[:0], Header{Type: TypeData, Seq: c.seq, Len: uint32(8 * len(items))})
	for _, x := range items {
		c.scratch = binary.LittleEndian.AppendUint64(c.scratch, uint64(x))
	}
	if _, err := c.bw.Write(c.scratch); err != nil {
		return 0, err
	}
	return c.seq, nil
}

// Flush forces buffered frames onto the socket.
func (c *Client) Flush() error { return c.bw.Flush() }

// ReadAck reads the next acknowledgment in frame order. It does not
// translate refusals into errors — pipelined callers classify the code
// themselves.
func (c *Client) ReadAck() (Ack, error) { return ReadAck(c.br) }

// Send writes one data frame and waits for its ack, returning an
// *AckError on refusal. All-or-nothing: on any error the frame's items
// were not ingested.
func (c *Client) Send(items []stream.Item) error {
	if _, err := c.Push(items); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.expectOK()
}

// expectOK reads the next ack, requiring it to match the last written
// sequence number with AckOK.
func (c *Client) expectOK() error {
	ack, err := ReadAck(c.br)
	if err != nil {
		return err
	}
	if ack.Seq != c.seq {
		return fmt.Errorf("framing: ack for frame %d, want %d (pipelined acks must be drained with ReadAck)", ack.Seq, c.seq)
	}
	if ack.Code != AckOK {
		return &AckError{Ack: ack}
	}
	return nil
}

// Close performs the graceful close handshake (best effort) and closes the
// connection.
func (c *Client) Close() error {
	c.seq++
	c.scratch = AppendHeader(c.scratch[:0], Header{Type: TypeClose, Seq: c.seq, Len: 0})
	if _, err := c.bw.Write(c.scratch); err == nil {
		if err := c.bw.Flush(); err == nil {
			ReadAck(c.br) //nolint:errcheck // best-effort goodbye ack
		}
	}
	return c.conn.Close()
}
