package framing

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestAckWriterBatchesWhilePipelined pins the flush gate: an ack written
// while the connection's read buffer still holds bytes (the next pipelined
// frame) stays buffered, and an ack written against an empty read buffer
// flushes immediately — the synchronous request/response case keeps its
// latency.
func TestAckWriterBatchesWhilePipelined(t *testing.T) {
	var out bytes.Buffer
	bw := bufio.NewWriter(&out)
	br := bufio.NewReader(strings.NewReader("pipelined frame bytes"))
	if _, err := br.Peek(1); err != nil {
		t.Fatal(err)
	}
	w := NewAckWriter(bw, br)

	// Pending input: the ack is deferred.
	if err := w.WriteAck(Ack{Seq: 1, Code: AckOK}); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("ack flushed with %d request bytes still buffered", br.Buffered())
	}

	// An explicit Flush (the close path) delivers the deferred ack.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := ReadAck(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq != 1 || a.Code != AckOK {
		t.Fatalf("deferred ack round-tripped as %+v", a)
	}

	// Drained input: the next ack flushes on its own.
	if _, err := io.Copy(io.Discard, br); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := w.WriteAck(Ack{Seq: 2, Code: AckDuplicate, Info: 7}); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("ack not flushed with an empty request buffer")
	}
	a, err = ReadAck(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seq != 2 || a.Code != AckDuplicate || a.Info != 7 {
		t.Fatalf("immediate ack round-tripped as %+v", a)
	}
}
