package framing

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"dpmg/internal/stream"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []Header{
		{Type: TypeBind, Seq: 0, Len: 0},
		{Type: TypeData, Seq: 1, Len: 8 * 4096},
		{Type: TypeClose, Seq: ^uint32(0), Len: 0},
		{Type: TypeAck, Seq: 7, Len: ackFixedLen},
	}
	for _, h := range cases {
		b := AppendHeader(nil, h)
		if len(b) != HeaderSize {
			t.Fatalf("header %+v encoded to %d bytes, want %d", h, len(b), HeaderSize)
		}
		got, err := ReadHeader(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("ReadHeader(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	cases := []Ack{
		{Seq: 0, Code: AckOK, Info: 0},
		{Seq: 3, Code: AckOK, Info: 1 << 40},
		{Seq: 9, Code: AckBadItem, Info: 0, Msg: "item 99 outside universe [1,16]"},
		{Seq: 10, Code: AckRateLimited, Msg: strings.Repeat("x", MaxAckMsgLen)},
	}
	for _, a := range cases {
		b := AppendAck(nil, a)
		got, err := ReadAck(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("ReadAck(%+v): %v", a, err)
		}
		if got != a {
			t.Fatalf("round trip: got %+v, want %+v", got, a)
		}
	}
}

func TestAckMsgTruncated(t *testing.T) {
	a := Ack{Seq: 1, Code: AckBadFrame, Msg: strings.Repeat("m", MaxAckMsgLen+100)}
	got, err := ReadAck(bytes.NewReader(AppendAck(nil, a)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Msg) != MaxAckMsgLen {
		t.Fatalf("message length %d, want truncation to %d", len(got.Msg), MaxAckMsgLen)
	}
}

func TestReadAckRejectsForeignFrame(t *testing.T) {
	b := AppendHeader(nil, Header{Type: TypeData, Seq: 1, Len: 8})
	b = append(b, make([]byte, 8)...)
	if _, err := ReadAck(bytes.NewReader(b)); err == nil {
		t.Fatal("ReadAck accepted a data frame")
	}
}

func TestPreamble(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePreamble(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadPreamble(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("valid preamble rejected: %v", err)
	}
	bad := buf.Bytes()
	bad[0] = 'X'
	if err := ReadPreamble(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	good := Preamble // array copy; the package-level Preamble stays intact
	good[5] = Version + 1
	if err := ReadPreamble(bytes.NewReader(good[:])); err == nil {
		t.Fatal("future protocol version accepted")
	}
	if err := ReadPreamble(bytes.NewReader(nil)); !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("empty preamble: got %v, want EOF-ish", err)
	}
}

// TestClientFrameBytes pins the client's data-frame encoding to the wire
// contract: header then consecutive 8-byte little-endian items — the exact
// body bytes encoding.MarshalItems would produce for the same batch.
func TestClientFrameBytes(t *testing.T) {
	cl, srv := net.Pipe()
	defer srv.Close()

	done := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(srv)
		done <- b
	}()

	c, err := NewClient(cl)
	if err != nil {
		t.Fatal(err)
	}
	items := []stream.Item{1, 2, 1 << 40}
	seq, err := c.Push(items)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	raw := <-done

	want := append([]byte{}, Preamble[:]...)
	want = AppendHeader(want, Header{Type: TypeData, Seq: seq, Len: 24})
	want = append(want,
		1, 0, 0, 0, 0, 0, 0, 0,
		2, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0, 0, 1, 0, 0)
	if !bytes.Equal(raw, want) {
		t.Fatalf("wire bytes\n got %x\nwant %x", raw, want)
	}
}

func TestClientLimits(t *testing.T) {
	cl, srv := net.Pipe()
	defer srv.Close()
	go io.Copy(io.Discard, srv) //nolint:errcheck // drain
	c, err := NewClient(cl)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := c.Bind(strings.Repeat("n", MaxNameLen+1)); err == nil {
		t.Fatal("oversized bind name accepted")
	}
	if _, err := c.Push(make([]stream.Item, MaxDataItems+1)); err == nil {
		t.Fatal("oversized data frame accepted")
	}
}
