package framing

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip fuzzes the codec in both directions: structured
// values must survive encode → decode unchanged, and arbitrary bytes must
// never panic the decoder — on a successful decode, re-encoding must
// reproduce the canonical wire bytes (the decoder accepts nothing the
// encoder cannot express).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(TypeData), uint32(1), uint32(8), byte(AckOK), uint64(4096), "")
	f.Add(byte(TypeBind), uint32(7), uint32(5), byte(AckBadItem), uint64(0), "item 9 outside universe")
	f.Add(byte(TypeAck), uint32(0), uint32(ackFixedLen), byte(AckStreamGone), uint64(1<<40), "deleted")
	f.Fuzz(func(t *testing.T, typ byte, seq, plen uint32, code byte, info uint64, msg string) {
		// Header round trip.
		h := Header{Type: Type(typ), Seq: seq, Len: plen}
		hb := AppendHeader(nil, h)
		if len(hb) != HeaderSize {
			t.Fatalf("header encoded to %d bytes", len(hb))
		}
		got, err := ReadHeader(bytes.NewReader(hb))
		if err != nil {
			t.Fatalf("ReadHeader on canonical bytes: %v", err)
		}
		if got != h {
			t.Fatalf("header round trip: got %+v, want %+v", got, h)
		}

		// Ack round trip (message truncation is part of the contract).
		a := Ack{Seq: seq, Code: AckCode(code), Info: info, Msg: msg}
		ab := AppendAck(nil, a)
		back, err := ReadAck(bytes.NewReader(ab))
		if err != nil {
			t.Fatalf("ReadAck on canonical bytes: %v", err)
		}
		want := a
		if len(want.Msg) > MaxAckMsgLen {
			want.Msg = want.Msg[:MaxAckMsgLen]
		}
		if back != want {
			t.Fatalf("ack round trip: got %+v, want %+v", back, want)
		}
		if re := AppendAck(nil, back); !bytes.Equal(re, ab) {
			t.Fatalf("ack re-encode drifted:\n got %x\nwant %x", re, ab)
		}

		// Decoder robustness: arbitrary prefixes must not panic, and any
		// accepted ack must re-encode to exactly the bytes consumed.
		raw := append(append([]byte{}, hb...), ab...)
		if len(raw) > 0 {
			raw = raw[:int(seq)%len(raw)]
		}
		if dec, err := ReadAck(bytes.NewReader(raw)); err == nil {
			re := AppendAck(nil, dec)
			if !bytes.Equal(re, raw[:len(re)]) {
				t.Fatalf("accepted ack does not re-encode canonically:\n got %x\nwant prefix of %x", re, raw)
			}
		}
	})
}
