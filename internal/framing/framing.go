// Package framing is the wire codec of the streaming binary ingest
// datapath: length-prefixed frames over a persistent connection, the
// raw-speed alternative to request-per-batch HTTP for the hot edge →
// aggregator path of the paper's Section 7 distributed setting.
//
// A connection opens with a fixed 8-byte preamble (magic + protocol
// version), then carries frames in both directions. Every client frame is
// acknowledged by exactly one server ack frame, in order — TCP preserves
// ordering, so the k-th ack answers the k-th frame, and the echoed
// sequence number lets clients cross-check that invariant. A connection
// binds to a stream once with a bind frame (sticky routing: the server
// pre-resolves the stream handle and subsequent data frames skip the
// registry lookup); data frames then carry raw items in the same 8-byte
// little-endian layout as encoding.MarshalItems, so an edge can ship a
// []uint64 with no per-item encoding work.
//
// Frame layout (all integers little-endian):
//
//	[1] type   (TypeBind | TypeData | TypeClose | TypeAck)
//	[4] seq    (client-chosen; echoed verbatim in the matching ack)
//	[4] len    (payload length in bytes)
//	[len] payload
//
// Payloads by type:
//
//	TypeBind   stream name (UTF-8, at most MaxNameLen bytes)
//	TypeData   items, 8 bytes each, little-endian (at most MaxDataItems)
//	TypeClose  empty
//	TypeAck    [1] code, [8] info, [rest] message (at most MaxAckMsgLen)
//
// Ack semantics are all-or-nothing, mirroring the HTTP batch endpoint: a
// refused data frame (bad item, rate limit, fault-in failure) ingested
// nothing, and AckOK means the whole frame was applied. The info field of
// a data ack carries the stream's total ingested-item count, so a client
// can audit that no frame was silently dropped.
package framing

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Preamble opens every connection: 4 magic bytes distinguishing this
// protocol from stray HTTP or TLS traffic, a protocol version, and three
// reserved zero bytes that round the prefix to 8 bytes.
var Preamble = [8]byte{'D', 'P', 'M', 'G', 'S', Version, 0, 0}

// Version is the streaming-ingest protocol version this package speaks.
const Version = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 9

// Wire limits. They bound per-connection memory commitments on the server
// (a frame header is read before its payload is believed) and keep the
// protocol's DoS surface in line with the HTTP path's MaxBytesReader.
const (
	// MaxDataItems bounds one data frame's item count — the same ceiling
	// the HTTP batch endpoint enforces.
	MaxDataItems = 1 << 21
	// MaxNameLen bounds a bind frame's stream name (the manager caps
	// names at 128; the wire allows slack for forward compatibility).
	MaxNameLen = 256
	// MaxAckMsgLen bounds an ack frame's human-readable message.
	MaxAckMsgLen = 512
	// MaxSummaryFrameLen bounds a summary frame's payload — the same
	// ceiling the HTTP summary endpoint's MaxBytesReader enforces. It must
	// admit the largest legal payload, not merely approximate it: a full
	// k=2²⁰ summary (the manager's MaxStreamK) is exactly 16 MiB (1<<24)
	// of entries, and the encoding header plus the aggregation tier's
	// name/seq prefix ride on top — without the slack KiB a max-k stream
	// could never be cut or shipped.
	MaxSummaryFrameLen = 1<<24 + 1024
)

// Type tags a frame.
type Type byte

// Frame types. Client-to-server types are low values; the server-to-client
// ack has the high bit set so a desynchronized peer fails loudly.
const (
	// TypeBind binds the connection to the named stream (payload: name).
	TypeBind Type = 1
	// TypeData carries raw items for the bound stream.
	TypeData Type = 2
	// TypeClose announces a graceful client close; the server acks it and
	// closes its side.
	TypeClose Type = 3
	// TypeHello identifies the peer on an aggregation-tier connection
	// (payload: edge node name). It must be the first frame an edge sends
	// to a root, before any summary frame.
	TypeHello Type = 4
	// TypeSummary ships one flat mergeable summary upstream on the
	// aggregation tier (payload codec in internal/cluster: stream name,
	// edge-assigned ship sequence number, encoding.KindSummary blob).
	TypeSummary Type = 5
	// TypeSeqQuery asks the root for the last ship sequence number it
	// folded for the sending edge and the named stream (payload: stream
	// name; answered in the ack's info field). Edges use it to re-sync
	// their sequence counters after a restart.
	TypeSeqQuery Type = 6
	// TypeAck is the server's per-frame acknowledgment.
	TypeAck Type = 0x80
)

// String names the frame type for logs and errors.
func (t Type) String() string {
	switch t {
	case TypeBind:
		return "bind"
	case TypeData:
		return "data"
	case TypeClose:
		return "close"
	case TypeHello:
		return "hello"
	case TypeSummary:
		return "summary"
	case TypeSeqQuery:
		return "seq-query"
	case TypeAck:
		return "ack"
	default:
		return fmt.Sprintf("type(0x%02x)", byte(t))
	}
}

// Header is the fixed-size frame prefix.
type Header struct {
	// Type tags the frame.
	Type Type
	// Seq is the client-chosen sequence number, echoed in the ack.
	Seq uint32
	// Len is the payload length in bytes.
	Len uint32
}

// AppendHeader appends the encoded header to dst.
func AppendHeader(dst []byte, h Header) []byte {
	var b [HeaderSize]byte
	b[0] = byte(h.Type)
	binary.LittleEndian.PutUint32(b[1:5], h.Seq)
	binary.LittleEndian.PutUint32(b[5:9], h.Len)
	return append(dst, b[:]...)
}

// ReadHeader reads one frame header from r.
func ReadHeader(r io.Reader) (Header, error) {
	var b [HeaderSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Header{}, err
	}
	return ParseHeader(b[:]), nil
}

// ParseHeader decodes a frame header from b, which must hold at least
// HeaderSize bytes — the slice counterpart of ReadHeader, for handlers that
// read into reusable per-connection buffers instead of a stack array that
// escapes through the io.Reader interface.
func ParseHeader(b []byte) Header {
	return Header{
		Type: Type(b[0]),
		Seq:  binary.LittleEndian.Uint32(b[1:5]),
		Len:  binary.LittleEndian.Uint32(b[5:9]),
	}
}

// WritePreamble writes the connection preamble to w.
func WritePreamble(w io.Writer) error {
	_, err := w.Write(Preamble[:])
	return err
}

// ReadPreamble reads and validates the connection preamble, rejecting
// foreign magic and protocol versions this package does not speak.
func ReadPreamble(r io.Reader) error {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("framing: reading preamble: %w", err)
	}
	if b[0] != 'D' || b[1] != 'P' || b[2] != 'M' || b[3] != 'G' || b[4] != 'S' {
		return fmt.Errorf("framing: bad preamble magic %q", b[:5])
	}
	if b[5] != Version {
		return fmt.Errorf("framing: unsupported protocol version %d (want %d)", b[5], Version)
	}
	return nil
}

// AckCode classifies a per-frame acknowledgment. Codes mirror the HTTP
// endpoint's status classes: client errors name what the client must fix,
// AckUnavailable is the 503 analogue (server-side store trouble — retry
// later, the frame was not applied), AckRateLimited the 429 analogue.
type AckCode byte

// Ack codes.
const (
	// AckOK: the frame was applied in full.
	AckOK AckCode = 0
	// AckBadFrame: the frame was malformed (unknown type, oversized
	// payload, preamble violation). The server closes the connection —
	// framing can no longer be trusted.
	AckBadFrame AckCode = 1
	// AckUnknownStream: a bind named a stream the manager does not hold.
	AckUnknownStream AckCode = 2
	// AckNotBound: a data frame arrived before any successful bind.
	AckNotBound AckCode = 3
	// AckBadItem: a data frame carried an item outside the stream's
	// universe (or a truncated item). Nothing was ingested.
	AckBadItem AckCode = 4
	// AckRateLimited: the stream's QoS ceiling refused the frame; nothing
	// was ingested and no tokens were consumed. Retry after backing off.
	AckRateLimited AckCode = 5
	// AckUnavailable: a server-side failure (offload-store I/O during
	// fault-in) prevented ingest. The client did nothing wrong; retry
	// later. The HTTP analogue is 503.
	AckUnavailable AckCode = 6
	// AckStreamGone: the bound stream was deleted; the binding is dropped
	// and the client must bind again (or to another stream).
	AckStreamGone AckCode = 7
	// AckShuttingDown: the server is draining; re-connect elsewhere.
	AckShuttingDown AckCode = 8
	// AckDuplicate: a summary frame's ship sequence number was already
	// folded (an idempotent re-ship after an edge restart). Success-class:
	// nothing was merged, nothing was lost, and the shipper may discard
	// its spool record. The ack info field carries the last folded seq.
	AckDuplicate AckCode = 9
	// AckNotHello: an aggregation-tier frame arrived before the
	// connection's hello frame identified the edge. Analogous to
	// AckNotBound on the ingest datapath.
	AckNotHello AckCode = 10
)

// String names the ack code for logs and errors.
func (c AckCode) String() string {
	switch c {
	case AckOK:
		return "ok"
	case AckBadFrame:
		return "bad-frame"
	case AckUnknownStream:
		return "unknown-stream"
	case AckNotBound:
		return "not-bound"
	case AckBadItem:
		return "bad-item"
	case AckRateLimited:
		return "rate-limited"
	case AckUnavailable:
		return "unavailable"
	case AckStreamGone:
		return "stream-gone"
	case AckShuttingDown:
		return "shutting-down"
	case AckDuplicate:
		return "duplicate"
	case AckNotHello:
		return "not-hello"
	default:
		return fmt.Sprintf("code(0x%02x)", byte(c))
	}
}

// ackFixedLen is the fixed part of an ack payload: code + info.
const ackFixedLen = 1 + 8

// Ack is one server acknowledgment: the echoed sequence number, a result
// code, a code-dependent counter (for AckOK data frames: the stream's
// total ingested items), and an optional human-readable message for
// refusals.
type Ack struct {
	// Seq echoes the acknowledged frame's sequence number.
	Seq uint32
	// Code classifies the outcome.
	Code AckCode
	// Info is a code-dependent counter (data AckOK: total items ingested
	// into the stream; otherwise 0 unless documented).
	Info uint64
	// Msg is an optional human-readable detail for refusals, truncated to
	// MaxAckMsgLen bytes on the wire.
	Msg string
}

// AppendAck appends a complete ack frame (header + payload) to dst,
// truncating Msg to MaxAckMsgLen.
func AppendAck(dst []byte, a Ack) []byte {
	msg := a.Msg
	if len(msg) > MaxAckMsgLen {
		msg = msg[:MaxAckMsgLen]
	}
	dst = AppendHeader(dst, Header{Type: TypeAck, Seq: a.Seq, Len: uint32(ackFixedLen + len(msg))})
	dst = append(dst, byte(a.Code))
	var info [8]byte
	binary.LittleEndian.PutUint64(info[:], a.Info)
	dst = append(dst, info[:]...)
	return append(dst, msg...)
}

// ReadAck reads one complete ack frame from r, rejecting frames of any
// other type and oversized messages.
func ReadAck(r io.Reader) (Ack, error) {
	a, _, err := readAckBuf(r, nil)
	return a, err
}

// readAckBuf is ReadAck into caller-owned scratch: buf is grown to the
// maximum ack frame size once and returned for reuse, so a client reading
// acks in a loop allocates only when a refusal carries a message. A nil buf
// is allocated on first use.
func readAckBuf(r io.Reader, buf []byte) (Ack, []byte, error) {
	const maxFrame = HeaderSize + ackFixedLen + MaxAckMsgLen
	if cap(buf) < maxFrame {
		buf = make([]byte, maxFrame)
	}
	buf = buf[:maxFrame]
	if _, err := io.ReadFull(r, buf[:HeaderSize]); err != nil {
		return Ack{}, buf, err
	}
	h := ParseHeader(buf)
	if h.Type != TypeAck {
		return Ack{}, buf, fmt.Errorf("framing: expected ack frame, got %v", h.Type)
	}
	if h.Len < ackFixedLen || h.Len > ackFixedLen+MaxAckMsgLen {
		return Ack{}, buf, fmt.Errorf("framing: ack payload length %d outside [%d, %d]", h.Len, ackFixedLen, ackFixedLen+MaxAckMsgLen)
	}
	payload := buf[HeaderSize : HeaderSize+h.Len]
	if _, err := io.ReadFull(r, payload); err != nil {
		return Ack{}, buf, fmt.Errorf("framing: reading ack payload: %w", err)
	}
	return Ack{
		Seq:  h.Seq,
		Code: AckCode(payload[0]),
		Info: binary.LittleEndian.Uint64(payload[1:9]),
		Msg:  string(payload[ackFixedLen:]),
	}, buf, nil
}
