package merge

import (
	"math/rand/v2"
	"testing"

	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

func summarize(t *testing.T, k int, d uint64, str stream.Stream) *Summary {
	t.Helper()
	sk := mg.New(k, d)
	sk.Process(str)
	s, err := FromCounters(k, d, sk.Counters())
	if err != nil {
		t.Fatalf("FromCounters: %v", err)
	}
	return s
}

func TestMergeErrorBound(t *testing.T) {
	// Lemma 29 / [1]: a merged summary over streams of total length N has
	// estimates in [f(x) - N/(k+1), f(x)].
	k := 16
	d := uint64(500)
	var summaries []*Summary
	var all stream.Stream
	for i := 0; i < 8; i++ {
		str := workload.Zipf(10000, int(d), 1.1, uint64(i+1))
		all = append(all, str...)
		summaries = append(summaries, summarize(t, k, d, str))
	}
	merged, err := MergeAll(summaries)
	if err != nil {
		t.Fatal(err)
	}
	f := hist.Exact(all)
	slack := int64(len(all)) / int64(k+1)
	for x, fx := range f {
		est := merged.Estimate(x)
		if est > fx {
			t.Fatalf("item %d: estimate %d > true %d", x, est, fx)
		}
		if est < fx-slack {
			t.Fatalf("item %d: estimate %d < %d - %d", x, est, fx, slack)
		}
	}
	if merged.Len() > k {
		t.Fatalf("merged summary has %d > k counters", merged.Len())
	}
}

func TestMergeErrorBoundRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.IntN(6)
		d := uint64(3 + rng.IntN(10))
		parts := 2 + rng.IntN(4)
		var summaries []*Summary
		var all stream.Stream
		for p := 0; p < parts; p++ {
			n := rng.IntN(60)
			str := make(stream.Stream, n)
			for i := range str {
				str[i] = stream.Item(rng.IntN(int(d)) + 1)
			}
			all = append(all, str...)
			summaries = append(summaries, summarize(t, k, d, str))
		}
		merged, err := MergeAll(summaries)
		if err != nil {
			t.Fatal(err)
		}
		f := hist.Exact(all)
		slack := int64(len(all)) / int64(k+1)
		for x, fx := range f {
			est := merged.Estimate(x)
			if est > fx || est < fx-slack {
				t.Fatalf("trial %d item %d: est %d true %d slack %d", trial, x, est, fx, slack)
			}
		}
	}
}

func TestLemma17SingleMerge(t *testing.T) {
	// Lemma 17: if the first summary pair has the one-sided 0/1 structure,
	// the merged pair keeps it. Build neighboring pairs from real sketches.
	rng := rand.New(rand.NewPCG(7, 8))
	trials := 1000
	if testing.Short() {
		trials = 100
	}
	for trial := 0; trial < trials; trial++ {
		k := 2 + rng.IntN(4)
		d := uint64(3 + rng.IntN(6))
		n := 1 + rng.IntN(50)
		str := make(stream.Stream, n)
		for i := range str {
			str[i] = stream.Item(rng.IntN(int(d)) + 1)
		}
		a := summarize(t, k, d, str)
		aPrime := summarize(t, k, d, str.RemoveAt(rng.IntN(n)))
		if CheckNeighborStructure(a.CountsMap(), aPrime.CountsMap()) != nil {
			// Lemma 8 guarantees this structure only after dropping zero
			// counters, which FromCounters does; it must always hold.
			t.Fatalf("trial %d: input pair lacks 0/1 structure", trial)
		}
		// Merge both with the same second summary.
		m := rng.IntN(40)
		other := make(stream.Stream, m)
		for i := range other {
			other[i] = stream.Item(rng.IntN(int(d)) + 1)
		}
		b := summarize(t, k, d, other)
		ma, err := Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		maPrime, err := Merge(aPrime, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckNeighborStructure(ma.CountsMap(), maPrime.CountsMap()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCorollary18ManyMerges(t *testing.T) {
	// Corollary 18: the 0/1 structure survives any number of merges in any
	// fixed order, so the sensitivity is independent of the merge count.
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.IntN(4)
		d := uint64(3 + rng.IntN(6))
		parts := 2 + rng.IntN(6)
		streams := make([]stream.Stream, parts)
		for p := range streams {
			n := 1 + rng.IntN(40)
			streams[p] = make(stream.Stream, n)
			for i := range streams[p] {
				streams[p][i] = stream.Item(rng.IntN(int(d)) + 1)
			}
		}
		// Neighbor: remove one element from one part.
		pi := rng.IntN(parts)
		idx := rng.IntN(len(streams[pi]))

		build := func(modify bool) *Summary {
			var summaries []*Summary
			for p, str := range streams {
				if modify && p == pi {
					str = str.RemoveAt(idx)
				}
				summaries = append(summaries, summarize(t, k, d, str))
			}
			merged, err := MergeAll(summaries)
			if err != nil {
				t.Fatal(err)
			}
			return merged
		}
		a, b := build(false), build(true)
		if err := CheckNeighborStructure(a.CountsMap(), b.CountsMap()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if l1 := hist.L1Distance(a.CountsMap(), b.CountsMap()); l1 > float64(k) {
			t.Fatalf("trial %d: merged l1 sensitivity %v > k", trial, l1)
		}
	}
}

// mustSummary builds a summary from a counter table, failing the test on
// invalid input.
func mustSummary(t *testing.T, k int, counts map[stream.Item]int64) *Summary {
	t.Helper()
	s, err := FromCounters(k, 0, counts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMergeSizeMismatch(t *testing.T) {
	a := mustSummary(t, 4, nil)
	b := mustSummary(t, 5, nil)
	if _, err := Merge(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestMergeAllEmpty(t *testing.T) {
	if _, err := MergeAll(nil); err == nil {
		t.Error("empty MergeAll accepted")
	}
}

func TestFromCountersValidation(t *testing.T) {
	if _, err := FromCounters(0, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	// Too many positive counters.
	c := map[stream.Item]int64{1: 1, 2: 1, 3: 1}
	if _, err := FromCounters(2, 0, c); err == nil {
		t.Error("overfull counter table accepted")
	}
	// Dummies above the universe and zero counters must be dropped.
	c2 := map[stream.Item]int64{1: 2, 7: 0, 101: 5}
	s, err := FromCounters(2, 100, c2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Estimate(1) != 2 {
		t.Fatalf("Counts = %v", s.CountsMap())
	}
}

func TestFromSortedValidation(t *testing.T) {
	if _, err := FromSorted(0, nil, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FromSorted(4, []stream.Item{1, 2}, []int64{1}); err == nil {
		t.Error("ragged columns accepted")
	}
	if _, err := FromSorted(2, []stream.Item{1, 2, 3}, []int64{1, 1, 1}); err == nil {
		t.Error("overfull summary accepted")
	}
	if _, err := FromSorted(4, []stream.Item{2, 1}, []int64{1, 1}); err == nil {
		t.Error("descending keys accepted")
	}
	if _, err := FromSorted(4, []stream.Item{1, 1}, []int64{1, 1}); err == nil {
		t.Error("duplicate keys accepted")
	}
	if _, err := FromSorted(4, []stream.Item{1, 2}, []int64{1, 0}); err == nil {
		t.Error("non-positive counter accepted")
	}
	s, err := FromSorted(4, []stream.Item{3, 9}, []int64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Estimate(3) != 2 || s.Estimate(9) != 5 || s.Estimate(4) != 0 {
		t.Fatalf("FromSorted contents wrong: %v", s.CountsMap())
	}
}

func TestMergeSmallInputsNoSubtraction(t *testing.T) {
	// Union fits within k: merge must be exact addition.
	a := mustSummary(t, 4, map[stream.Item]int64{1: 3, 2: 1})
	b := mustSummary(t, 4, map[stream.Item]int64{1: 2, 3: 5})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := map[stream.Item]int64{1: 5, 2: 1, 3: 5}
	for x, w := range want {
		if m.Estimate(x) != w {
			t.Fatalf("Counts = %v", m.CountsMap())
		}
	}
}

func TestMergeSubtractsKPlusFirst(t *testing.T) {
	// 3 counters, k=2: subtract the 3rd largest from all.
	a := mustSummary(t, 2, map[stream.Item]int64{1: 10, 2: 4})
	b := mustSummary(t, 2, map[stream.Item]int64{3: 7})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// values 10,7,4 -> subtract 4 -> {1:6, 3:3}
	if m.Len() != 2 || m.Estimate(1) != 6 || m.Estimate(3) != 3 {
		t.Fatalf("Counts = %v", m.CountsMap())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := mustSummary(t, 2, map[stream.Item]int64{1: 1})
	c := a.Clone()
	c.Counts()[0] = 99 // mutate the clone's backing storage
	if a.Estimate(1) != 1 {
		t.Error("Clone shares storage")
	}
}
