package merge

import (
	"fmt"
	"math"
	"sort"

	"dpmg/internal/core"
	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/stream"
)

// MergeNoisy merges two released (float-valued) frequency tables with the
// Agarwal et al. rule — add, subtract the (k+1)-th largest, drop
// non-positive. This is the only merge available to an *untrusted*
// aggregator, which receives already-privatized sketches; the noise and
// threshold error of each input accumulates (Section 7: "the error from
// noise still increases linearly in the number of merges").
func MergeNoisy(a, b hist.Estimate, k int) hist.Estimate {
	combined := make(map[stream.Item]float64, len(a)+len(b))
	for x, v := range a {
		combined[x] = v
	}
	for x, v := range b {
		combined[x] += v
	}
	var sub float64
	if len(combined) > k {
		vals := make([]float64, 0, len(combined))
		for _, v := range combined {
			vals = append(vals, v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		sub = vals[k]
	}
	out := make(hist.Estimate, k)
	for x, v := range combined {
		if v > sub {
			out[x] = v - sub
		}
	}
	return out
}

// UntrustedAggregate models the Chan et al. setting: every local stream is
// sketched and privatized *before* leaving its server (Algorithm 2 with the
// given params), and the aggregator folds the noisy releases with
// MergeNoisy. The output is (eps, delta)-DP by post-processing, but its
// error grows linearly in the number of sketches.
func UntrustedAggregate(streams []stream.Stream, k int, d uint64, p core.Params, src noise.Source) (hist.Estimate, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("merge: no streams")
	}
	var acc hist.Estimate
	for i, str := range streams {
		sk := mg.New(k, d)
		sk.Process(str)
		rel, err := core.Release(sk, p, src)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			acc = rel
		} else {
			acc = MergeNoisy(acc, rel, k)
		}
	}
	return acc, nil
}

// TrustedAggregateLaplace is the Section 7 trusted-aggregator release built
// on the Section 6 sensitivity reduction: each local sketch is
// post-processed with Algorithm 3 (l1-sensitivity < 2), the reduced counters
// are summed exactly (the aggregator is trusted, so no noise yet), and the
// aggregate is privatized once with Laplace(2/eps) noise plus the threshold
// 1 + 2·ln(1/delta)/eps on each positive aggregated counter. The noise is
// independent of the number of merged sketches. The aggregated table can
// hold up to l·k counters, the memory trade-off the paper notes.
//
// reducedTables are the Algorithm 3 outputs of the individual sketches.
func TrustedAggregateLaplace(reducedTables []map[stream.Item]float64, eps, delta float64, src noise.Source) (hist.Estimate, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("merge: eps must be positive, got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("merge: delta must be in (0,1), got %v", delta)
	}
	if len(reducedTables) == 0 {
		return nil, fmt.Errorf("merge: no tables")
	}
	agg := make(map[stream.Item]float64)
	for _, tab := range reducedTables {
		for x, v := range tab {
			agg[x] += v
		}
	}
	keys := make([]stream.Item, 0, len(agg))
	for x := range agg {
		keys = append(keys, x)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	thresh := 1 + 2*noise.LaplaceQuantile(2/eps, delta) // hide single-key diffs
	out := make(hist.Estimate)
	for _, x := range keys {
		if v := agg[x] + noise.Laplace(src, 2/eps); v >= thresh {
			out[x] = v
		}
	}
	return out, nil
}

// TrustedAggregateBounded is the bounded-memory trusted pipeline: local
// non-private summaries are merged with the Agarwal algorithm (the
// aggregator never stores more than 2k counters), and the merged summary is
// released once with Laplace(k/eps) noise and a k-scaled threshold — valid
// because Corollary 18 bounds the merged l1-sensitivity by k independent of
// the number of merges. This is the regime where the Chan et al. approach,
// fixed up with the paper's Corollary 18, beats per-sketch noising once the
// number of merges exceeds ~k.
func TrustedAggregateBounded(summaries []*Summary, eps, delta float64, src noise.Source) (hist.Estimate, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("merge: eps must be positive, got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("merge: delta must be in (0,1), got %v", delta)
	}
	merged, err := MergeAll(summaries)
	if err != nil {
		return nil, err
	}
	return ReleaseBoundedFlat(merged, eps, delta, src), nil
}

// BoundedScale returns the per-counter Laplace scale of the Corollary 18
// release: k/eps, since up to k counters can differ between neighboring
// merged summaries.
func BoundedScale(eps float64, k int) float64 { return float64(k) / eps }

// BoundedThreshold returns the removal threshold of the Corollary 18
// release: 1 + 2·(k/ε)·ln((k+1)/(2δ)), which hides the up-to-k keys (each
// off by one) that can differ between neighboring merged summaries.
func BoundedThreshold(eps, delta float64, k int) float64 {
	return 1 + 2*BoundedScale(eps, k)*math.Log(float64(k+1)/(2*delta))
}

// ReleaseBounded privatizes one already-merged counter table with the
// Corollary 18 Laplace release: Laplace(k/eps) per counter, threshold
// BoundedThreshold, keys visited in ascending order (input-independent, the
// Section 5.2 requirement). Inputs must be pre-validated; both
// TrustedAggregateBounded and the unified release front-end funnel through
// the same flat loop so their noise draws are identical.
func ReleaseBounded(counts map[stream.Item]int64, k int, eps, delta float64, src noise.Source) hist.Estimate {
	keys := make([]stream.Item, 0, len(counts))
	for x := range counts {
		keys = append(keys, x)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return ReleaseBoundedSorted(counts, keys, k, eps, delta, src)
}

// ReleaseBoundedSorted is ReleaseBounded visiting the counters in the
// caller-supplied key order, for callers that already hold the ascending
// key set — keys must cover every key of counts and be input-independent.
func ReleaseBoundedSorted(counts map[stream.Item]int64, keys []stream.Item, k int, eps, delta float64, src noise.Source) hist.Estimate {
	scale := BoundedScale(eps, k)
	thresh := BoundedThreshold(eps, delta, k)
	out := make(hist.Estimate)
	for _, x := range keys {
		if c := counts[x]; c > 0 {
			if v := float64(c) + noise.Laplace(src, scale); v >= thresh {
				out[x] = v
			}
		}
	}
	return out
}

// ReleaseBoundedColumns is the Corollary 18 release over flat parallel
// counter columns: keys must be ascending (the Section 5.2 order) and the
// loop draws one Laplace(k/eps) sample per strictly positive counter, so
// its draw sequence is identical to ReleaseBoundedSorted over the same
// table. No map is built or consulted.
func ReleaseBoundedColumns(keys []stream.Item, counts []int64, k int, eps, delta float64, src noise.Source) hist.Estimate {
	scale := BoundedScale(eps, k)
	thresh := BoundedThreshold(eps, delta, k)
	out := make(hist.Estimate)
	for i, x := range keys {
		if c := counts[i]; c > 0 {
			if v := float64(c) + noise.Laplace(src, scale); v >= thresh {
				out[x] = v
			}
		}
	}
	return out
}

// ReleaseBoundedFlat privatizes a flat summary with the Corollary 18
// release, consuming the summary's already-sorted columns directly.
func ReleaseBoundedFlat(s *Summary, eps, delta float64, src noise.Source) hist.Estimate {
	return ReleaseBoundedColumns(s.keys, s.vals, s.K, eps, delta, src)
}
