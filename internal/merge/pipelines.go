package merge

import (
	"fmt"
	"math"
	"sort"

	"dpmg/internal/core"
	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/stream"
)

// MergeNoisy merges two released (float-valued) frequency tables with the
// Agarwal et al. rule — add, subtract the (k+1)-th largest, drop
// non-positive. This is the only merge available to an *untrusted*
// aggregator, which receives already-privatized sketches; the noise and
// threshold error of each input accumulates (Section 7: "the error from
// noise still increases linearly in the number of merges").
func MergeNoisy(a, b hist.Estimate, k int) hist.Estimate {
	combined := make(map[stream.Item]float64, len(a)+len(b))
	for x, v := range a {
		combined[x] = v
	}
	for x, v := range b {
		combined[x] += v
	}
	var sub float64
	if len(combined) > k {
		vals := make([]float64, 0, len(combined))
		for _, v := range combined {
			vals = append(vals, v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		sub = vals[k]
	}
	out := make(hist.Estimate, k)
	for x, v := range combined {
		if v > sub {
			out[x] = v - sub
		}
	}
	return out
}

// UntrustedAggregate models the Chan et al. setting: every local stream is
// sketched and privatized *before* leaving its server (Algorithm 2 with the
// given params), and the aggregator folds the noisy releases with
// MergeNoisy. The output is (eps, delta)-DP by post-processing, but its
// error grows linearly in the number of sketches.
func UntrustedAggregate(streams []stream.Stream, k int, d uint64, p core.Params, src noise.Source) (hist.Estimate, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("merge: no streams")
	}
	var acc hist.Estimate
	for i, str := range streams {
		sk := mg.New(k, d)
		sk.Process(str)
		rel, err := core.Release(sk, p, src)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			acc = rel
		} else {
			acc = MergeNoisy(acc, rel, k)
		}
	}
	return acc, nil
}

// TrustedAggregateLaplace is the Section 7 trusted-aggregator release built
// on the Section 6 sensitivity reduction: each local sketch is
// post-processed with Algorithm 3 (l1-sensitivity < 2), the reduced counters
// are summed exactly (the aggregator is trusted, so no noise yet), and the
// aggregate is privatized once with Laplace(2/eps) noise plus the threshold
// 1 + 2·ln(1/delta)/eps on each positive aggregated counter. The noise is
// independent of the number of merged sketches. The aggregated table can
// hold up to l·k counters, the memory trade-off the paper notes.
//
// reducedTables are the Algorithm 3 outputs of the individual sketches.
func TrustedAggregateLaplace(reducedTables []map[stream.Item]float64, eps, delta float64, src noise.Source) (hist.Estimate, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("merge: eps must be positive, got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("merge: delta must be in (0,1), got %v", delta)
	}
	if len(reducedTables) == 0 {
		return nil, fmt.Errorf("merge: no tables")
	}
	agg := make(map[stream.Item]float64)
	for _, tab := range reducedTables {
		for x, v := range tab {
			agg[x] += v
		}
	}
	keys := make([]stream.Item, 0, len(agg))
	for x := range agg {
		keys = append(keys, x)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	thresh := 1 + 2*noise.LaplaceQuantile(2/eps, delta) // hide single-key diffs
	out := make(hist.Estimate)
	for _, x := range keys {
		if v := agg[x] + noise.Laplace(src, 2/eps); v >= thresh {
			out[x] = v
		}
	}
	return out, nil
}

// TrustedAggregateBounded is the bounded-memory trusted pipeline: local
// non-private summaries are merged with the Agarwal algorithm (the
// aggregator never stores more than 2k counters), and the merged summary is
// released once with Laplace(k/eps) noise and a k-scaled threshold — valid
// because Corollary 18 bounds the merged l1-sensitivity by k independent of
// the number of merges. This is the regime where the Chan et al. approach,
// fixed up with the paper's Corollary 18, beats per-sketch noising once the
// number of merges exceeds ~k.
func TrustedAggregateBounded(summaries []*Summary, eps, delta float64, src noise.Source) (hist.Estimate, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("merge: eps must be positive, got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("merge: delta must be in (0,1), got %v", delta)
	}
	merged, err := MergeAll(summaries)
	if err != nil {
		return nil, err
	}
	k := merged.K
	scale := float64(k) / eps
	// Up to k keys can differ between neighboring merged summaries
	// (Corollary 18), each by one; the threshold hides them.
	thresh := 1 + 2*scale*math.Log(float64(k+1)/(2*delta))
	keys := make([]stream.Item, 0, len(merged.Counts))
	for x := range merged.Counts {
		keys = append(keys, x)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make(hist.Estimate)
	for _, x := range keys {
		if v := float64(merged.Counts[x]) + noise.Laplace(src, scale); v >= thresh {
			out[x] = v
		}
	}
	return out, nil
}
