package merge

import (
	"testing"

	"dpmg/internal/stream"
)

// TestSetSortedRebinds pins the reusable-header contract: SetSorted rebinds
// an existing summary over new columns with FromSorted's validation and no
// allocations, and a failed rebind leaves an error rather than silently
// accepting bad columns.
func TestSetSortedRebinds(t *testing.T) {
	s := new(Summary)
	if err := s.SetSorted(4, []stream.Item{1, 5, 9}, []int64{2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Estimate(5) != 3 {
		t.Fatalf("first bind: len %d, estimate(5) %d", s.Len(), s.Estimate(5))
	}

	// Rebinding replaces the previous columns entirely.
	keys := []stream.Item{2, 7}
	vals := []int64{10, 20}
	if err := s.SetSorted(8, keys, vals); err != nil {
		t.Fatal(err)
	}
	if s.K != 8 || s.Len() != 2 || s.Estimate(5) != 0 || s.Estimate(7) != 20 {
		t.Fatalf("rebind: k %d, len %d, estimate(7) %d", s.K, s.Len(), s.Estimate(7))
	}

	// Steady-state rebinds are allocation-free.
	if avg := testing.AllocsPerRun(100, func() {
		if err := s.SetSorted(8, keys, vals); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("SetSorted allocates %.1f per rebind, want 0", avg)
	}

	// FromSorted's validation applies verbatim.
	for _, tc := range []struct {
		name string
		k    int
		keys []stream.Item
		vals []int64
	}{
		{"zero k", 0, []stream.Item{1}, []int64{1}},
		{"length mismatch", 4, []stream.Item{1, 2}, []int64{1}},
		{"over k", 1, []stream.Item{1, 2}, []int64{1, 1}},
		{"non-positive count", 4, []stream.Item{1}, []int64{0}},
		{"descending keys", 4, []stream.Item{5, 2}, []int64{1, 1}},
		{"duplicate keys", 4, []stream.Item{3, 3}, []int64{1, 1}},
	} {
		if err := s.SetSorted(tc.k, tc.keys, tc.vals); err == nil {
			t.Errorf("%s: SetSorted accepted invalid columns", tc.name)
		}
	}
}

// TestCloneCompactIndependent pins the two-allocation deep copy: the clone
// equals its source, shares no storage with it, and costs exactly two
// allocations (header plus the combined column block).
func TestCloneCompactIndependent(t *testing.T) {
	src, err := FromSorted(8, []stream.Item{1, 4, 9, 16}, []int64{5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	c := src.CloneCompact()
	if c.K != src.K || c.Len() != src.Len() {
		t.Fatalf("clone shape k=%d len=%d, want k=%d len=%d", c.K, c.Len(), src.K, src.Len())
	}
	for i := 0; i < src.Len(); i++ {
		ck, cv := c.At(i)
		sk, sv := src.At(i)
		if ck != sk || cv != sv {
			t.Fatalf("entry %d: clone (%d, %d), source (%d, %d)", i, ck, cv, sk, sv)
		}
	}

	// Mutating the source's backing storage must not reach the clone.
	src.keys[0], src.vals[0] = 999, 999
	if k, v := c.At(0); k != 1 || v != 5 {
		t.Fatalf("clone shares storage with source: entry 0 became (%d, %d)", k, v)
	}
	// And the other way around.
	c.keys[1], c.vals[1] = 888, 888
	if k, v := src.At(1); k != 4 || v != 6 {
		t.Fatalf("source entry 1 became (%d, %d)", k, v)
	}

	// The empty case stays valid (and single-allocation).
	empty, err := FromSorted(8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ec := empty.CloneCompact()
	if ec.K != 8 || ec.Len() != 0 {
		t.Fatalf("empty clone: k=%d len=%d", ec.K, ec.Len())
	}

	// Exactly two allocations per clone: header + combined block.
	if avg := testing.AllocsPerRun(100, func() { _ = src.CloneCompact() }); avg > 2 {
		t.Fatalf("CloneCompact allocates %.1f per clone, want <= 2", avg)
	}
}
