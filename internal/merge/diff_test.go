package merge

// Differential tests pinning the flat merge/release tier to its map-based
// counterparts: the flat multi-way MergeAll must reproduce the map
// reference's counter table exactly (ref.go is the executable spec, like
// mg.Ref for the sketch core), and the flat release loop must draw noise in
// exactly the order the map loop draws it, so a release through either
// representation is byte-identical under the same seed.

import (
	"math/rand/v2"
	"testing"

	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/stream"
)

func randomSummaries(t *testing.T, rng *rand.Rand, parts, k int, d uint64) []*Summary {
	t.Helper()
	sums := make([]*Summary, parts)
	for p := range sums {
		sk := mg.New(k, d)
		n := rng.IntN(200)
		for i := 0; i < n; i++ {
			sk.Update(stream.Item(rng.IntN(int(d)) + 1))
		}
		s, err := FromCounters(k, d, sk.Counters())
		if err != nil {
			t.Fatal(err)
		}
		sums[p] = s
	}
	return sums
}

func TestMergeAllMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	var m Merger // reused across trials: scratch reuse must not leak state
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.IntN(8)
		d := uint64(2 + rng.IntN(20))
		sums := randomSummaries(t, rng, 1+rng.IntN(6), k, d)
		want := mergeAllRef(sums)
		got, err := m.MergeAll(sums)
		if err != nil {
			t.Fatal(err)
		}
		if err := equalToRef(got, want); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMergeMatchesRefPairwise(t *testing.T) {
	// The binary Merge is the m=2 case of the multi-way rule; pin it to the
	// reference separately since the server's incremental fold uses it.
	rng := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.IntN(6)
		d := uint64(2 + rng.IntN(12))
		sums := randomSummaries(t, rng, 2, k, d)
		got, err := Merge(sums[0], sums[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := equalToRef(got, mergeAllRef(sums)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestReleaseBoundedFlatMatchesMap(t *testing.T) {
	// Same summary, same seed: the flat release and the map release must
	// produce identical histograms, because they must consume the noise
	// stream in the same (ascending-key) order.
	rng := rand.New(rand.NewPCG(15, 16))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.IntN(8)
		d := uint64(2 + rng.IntN(30))
		merged, err := MergeAll(randomSummaries(t, rng, 1+rng.IntN(5), k, d))
		if err != nil {
			t.Fatal(err)
		}
		seed := rng.Uint64()
		eps := 0.5 + rng.Float64()
		flat := ReleaseBoundedFlat(merged, eps, 1e-6, noise.NewSource(seed))
		viaMap := ReleaseBounded(merged.CountsMap(), merged.K, eps, 1e-6, noise.NewSource(seed))
		if len(flat) != len(viaMap) {
			t.Fatalf("trial %d: support drift: flat %d, map %d", trial, len(flat), len(viaMap))
		}
		for x, v := range viaMap {
			if flat[x] != v {
				t.Fatalf("trial %d: value drift at %d: flat %v, map %v", trial, x, flat[x], v)
			}
		}
	}
}

func TestMergerSelfMergeSafe(t *testing.T) {
	// Feeding a Merger's own borrowed result back as an input must not
	// corrupt the merge: the Merger detects the aliasing and moves to fresh
	// scratch. Construct the hazardous shape deliberately — the second
	// merge's other input sorts before the borrowed result's keys, so
	// without the guard the output cursor would overtake the read cursor.
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.IntN(6)
		d := uint64(30)
		var m Merger
		first, err := m.MergeAll(randomSummaries(t, rng, 3, k, d))
		if err != nil {
			t.Fatal(err)
		}
		// Low keys (1..10) so they merge ahead of most of first's keys.
		low := mg.New(k, d)
		for i := 0; i < 50; i++ {
			low.Update(stream.Item(rng.IntN(10) + 1))
		}
		other, err := FromCounters(k, d, low.Counters())
		if err != nil {
			t.Fatal(err)
		}
		want := mergeAllRef([]*Summary{other, first.Clone()})
		got, err := m.MergeAll([]*Summary{other, first})
		if err != nil {
			t.Fatal(err)
		}
		if err := equalToRef(got, want); err != nil {
			t.Fatalf("trial %d: self-merge corrupted: %v", trial, err)
		}
	}
}
