package merge

import (
	"fmt"
	"sort"

	"dpmg/internal/stream"
)

// This file is the map-based executable specification of the flat merge
// tier, in the same spirit as mg.Ref for the flat sketch core: the original
// map-and-sort implementation, kept compilable and exercised by the
// differential tests and FuzzMergeEquivalence so any behavioral drift in
// the flat slices shows up as a test failure, not a silent change. It is
// never called from production paths.

// mergeAllRef is the specification of MergeAll: add all counter tables into
// one map, subtract the (k+1)-th largest combined value, drop non-positive
// counters. Inputs must be non-empty with matching K (callers check).
func mergeAllRef(summaries []*Summary) map[stream.Item]int64 {
	k := summaries[0].K
	combined := make(map[stream.Item]int64)
	for _, s := range summaries {
		for i, x := range s.keys {
			combined[x] += s.vals[i]
		}
	}
	sub := kPlusFirstLargestRef(combined, k)
	out := make(map[stream.Item]int64, k)
	for x, c := range combined {
		if c > sub {
			out[x] = c - sub
		}
	}
	return out
}

// kPlusFirstLargestRef returns the (k+1)-th largest counter value, or 0
// when fewer than k+1 counters exist (then nothing needs subtracting).
func kPlusFirstLargestRef(counts map[stream.Item]int64, k int) int64 {
	if len(counts) <= k {
		return 0
	}
	vals := make([]int64, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	return vals[k]
}

// equalToRef reports whether the flat summary holds exactly the reference
// counter table, with a descriptive error when it does not.
func equalToRef(flat *Summary, ref map[stream.Item]int64) error {
	if flat.Len() != len(ref) {
		return fmt.Errorf("flat has %d counters, ref %d", flat.Len(), len(ref))
	}
	for i, x := range flat.keys {
		if i > 0 && flat.keys[i-1] >= x {
			return fmt.Errorf("flat keys not strictly ascending at %d", i)
		}
		if ref[x] != flat.vals[i] {
			return fmt.Errorf("key %d: flat %d, ref %d", x, flat.vals[i], ref[x])
		}
	}
	return nil
}
