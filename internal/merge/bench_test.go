package merge

import (
	"testing"

	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/workload"
)

func benchSummaries(b *testing.B, parts, k int, d uint64) []*Summary {
	b.Helper()
	sums := make([]*Summary, parts)
	for i := range sums {
		sk := mg.New(k, d)
		sk.Process(workload.Zipf(1<<16, int(d), 1.05, uint64(i+1)))
		s, err := FromCounters(k, d, sk.Counters())
		if err != nil {
			b.Fatal(err)
		}
		sums[i] = s
	}
	return sums
}

// BenchmarkMergeAllWide is the wide-aggregation case: 32 edge summaries of
// k=256 merged per iteration through a reused Merger (zero allocations in
// steady state).
func BenchmarkMergeAllWide(b *testing.B) {
	sums := benchSummaries(b, 32, 256, 1<<14)
	var m Merger
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MergeAll(sums); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReleaseBounded is the Corollary 18 Laplace release over a merged
// flat summary: one noise draw per counter, no map rebuilds.
func BenchmarkReleaseBounded(b *testing.B) {
	sums := benchSummaries(b, 8, 256, 1<<14)
	merged, err := MergeAll(sums)
	if err != nil {
		b.Fatal(err)
	}
	src := noise.NewSource(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rel := ReleaseBoundedFlat(merged, 1, 1e-6, src); rel == nil {
			b.Fatal("nil release")
		}
	}
}
