package merge

import (
	"testing"

	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/stream"
)

// FuzzMergeErrorBound splits arbitrary bytes into two streams, merges their
// summaries, and checks the Lemma 29 bound plus the size cap.
func FuzzMergeErrorBound(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5}, []byte{3, 5, 4, 3, 2, 1})
	f.Add([]byte{1, 0}, []byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, d1, d2 []byte) {
		if len(d1) < 1 || len(d2) < 1 {
			return
		}
		k := int(d1[0]%6) + 1
		d := uint64(8)
		mkStream := func(raw []byte) stream.Stream {
			var s stream.Stream
			for _, b := range raw {
				s = append(s, stream.Item(uint64(b)%d+1))
			}
			return s
		}
		s1, s2 := mkStream(d1[1:]), mkStream(d2)
		sum := func(s stream.Stream) *Summary {
			sk := mg.New(k, d)
			sk.Process(s)
			out, err := FromCounters(k, d, sk.Counters())
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		merged, err := Merge(sum(s1), sum(s2))
		if err != nil {
			t.Fatal(err)
		}
		if merged.Len() > k {
			t.Fatalf("merged holds %d > k counters", merged.Len())
		}
		all := append(append(stream.Stream{}, s1...), s2...)
		f := hist.Exact(all)
		slack := int64(len(all)) / int64(k+1)
		for x, fx := range f {
			est := merged.Estimate(x)
			if est > fx || est < fx-slack {
				t.Fatalf("Lemma 29 violated at %d: est %d true %d slack %d", x, est, fx, slack)
			}
		}
		for _, c := range merged.Counts() {
			if c <= 0 {
				t.Fatal("non-positive merged counter")
			}
		}
	})
}

// FuzzMergeEquivalence is the merge-tier analogue of mg's
// FuzzUpdateEquivalence: it builds a random set of summaries from arbitrary
// bytes and checks that the flat multi-way MergeAll produces exactly the
// counter table of the map-based reference implementation (ref.go), and
// that a reused Merger agrees with the package function.
func FuzzMergeEquivalence(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 0, 9, 9, 9, 1, 2})
	f.Add([]byte{1, 7, 0, 7, 0, 7})
	f.Add([]byte{6, 1, 1, 2, 2, 3, 3, 0, 4, 4, 0, 5, 5, 6})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			return
		}
		k := int(raw[0]%6) + 1
		d := uint64(8)
		// Split the remaining bytes into parts at zero bytes; each part is
		// one stream, each stream one summary.
		var summaries []*Summary
		sk := mg.New(k, d)
		n := 0
		flush := func() {
			if n == 0 {
				return
			}
			out, err := FromCounters(k, d, sk.Counters())
			if err != nil {
				t.Fatal(err)
			}
			summaries = append(summaries, out)
			sk = mg.New(k, d)
			n = 0
		}
		for _, b := range raw[1:] {
			if b == 0 {
				flush()
				continue
			}
			sk.Update(stream.Item(uint64(b)%d + 1))
			n++
		}
		flush()
		if len(summaries) == 0 {
			return
		}
		want := mergeAllRef(summaries)
		got, err := MergeAll(summaries)
		if err != nil {
			t.Fatal(err)
		}
		if err := equalToRef(got, want); err != nil {
			t.Fatalf("flat MergeAll diverges from map reference: %v", err)
		}
		// A reused Merger must agree with the one-shot path call after call.
		var m Merger
		for rep := 0; rep < 2; rep++ {
			res, err := m.MergeAll(summaries)
			if err != nil {
				t.Fatal(err)
			}
			if err := equalToRef(res, want); err != nil {
				t.Fatalf("rep %d: Merger diverges from reference: %v", rep, err)
			}
		}
	})
}
