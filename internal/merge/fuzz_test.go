package merge

import (
	"testing"

	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/stream"
)

// FuzzMergeErrorBound splits arbitrary bytes into two streams, merges their
// summaries, and checks the Lemma 29 bound plus the size cap.
func FuzzMergeErrorBound(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5}, []byte{3, 5, 4, 3, 2, 1})
	f.Add([]byte{1, 0}, []byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, d1, d2 []byte) {
		if len(d1) < 1 || len(d2) < 1 {
			return
		}
		k := int(d1[0]%6) + 1
		d := uint64(8)
		mkStream := func(raw []byte) stream.Stream {
			var s stream.Stream
			for _, b := range raw {
				s = append(s, stream.Item(uint64(b)%d+1))
			}
			return s
		}
		s1, s2 := mkStream(d1[1:]), mkStream(d2)
		sum := func(s stream.Stream) *Summary {
			sk := mg.New(k, d)
			sk.Process(s)
			out, err := FromCounters(k, d, sk.Counters())
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		merged, err := Merge(sum(s1), sum(s2))
		if err != nil {
			t.Fatal(err)
		}
		if len(merged.Counts) > k {
			t.Fatalf("merged holds %d > k counters", len(merged.Counts))
		}
		all := append(append(stream.Stream{}, s1...), s2...)
		f := hist.Exact(all)
		slack := int64(len(all)) / int64(k+1)
		for x, fx := range f {
			est := merged.Estimate(x)
			if est > fx || est < fx-slack {
				t.Fatalf("Lemma 29 violated at %d: est %d true %d slack %d", x, est, fx, slack)
			}
		}
		for _, c := range merged.Counts {
			if c <= 0 {
				t.Fatal("non-positive merged counter")
			}
		}
	})
}
