// Package merge implements the Misra-Gries merging algorithm of Agarwal,
// Cormode, Huang, Phillips, Wei and Yi ("Mergeable summaries") that
// Section 7 of the paper builds on, together with the sensitivity facts the
// paper proves about it: merging preserves the "counters differ by at most
// one" structure of neighboring sketches (Lemma 17, Corollary 18), so a
// merged sketch can be released with noise calibrated to l1-sensitivity k
// or l2-sensitivity sqrt(k) regardless of how many merges happened.
//
// # Flat storage
//
// A Summary stores its counters as two parallel slices — keys in strictly
// ascending order and their positive counts — instead of a Go map. The
// ascending order is exactly the input-independent release order Section 5.2
// requires, so the release loops consume a summary without rebuilding or
// re-sorting anything, and merging becomes a multi-way sorted-slice merge:
// no hashing, no map iteration, sequential memory access. A Merger reuses
// its scratch across calls, so the steady-state aggregation loop of a
// trusted aggregator (merge, release, repeat) performs zero allocations in
// the merge step. The retired map-based implementation survives as the
// executable specification in ref.go that differential and fuzz tests check
// the flat code against.
package merge

import (
	"fmt"
	"slices"
	"unsafe"

	"dpmg/internal/stream"
)

// Summary is a mergeable Misra-Gries summary: at most k strictly positive
// counters, stored flat as ascending keys with parallel counts. It is the
// Section 7 object of study — zero-count keys are not stored (unlike the
// Algorithm 1 sketch). Construct one with FromCounters or FromSorted; the
// zero value is not usable.
type Summary struct {
	K    int
	keys []stream.Item // strictly ascending
	vals []int64       // parallel to keys, strictly positive
}

// FromCounters builds a Summary from a counter table, dropping non-positive
// counters and any dummy keys above the universe bound (pass universe = 0 to
// keep all keys). It errors if more than k positive counters remain.
func FromCounters(k int, universe uint64, counts map[stream.Item]int64) (*Summary, error) {
	if k <= 0 {
		return nil, fmt.Errorf("merge: k must be positive")
	}
	keys := make([]stream.Item, 0, len(counts))
	for x, c := range counts {
		if c <= 0 {
			continue
		}
		if universe > 0 && uint64(x) > universe {
			continue
		}
		keys = append(keys, x)
	}
	if len(keys) > k {
		return nil, fmt.Errorf("merge: %d positive counters exceed k=%d", len(keys), k)
	}
	slices.Sort(keys)
	vals := make([]int64, len(keys))
	for i, x := range keys {
		vals[i] = counts[x]
	}
	return &Summary{K: k, keys: keys, vals: vals}, nil
}

// FromSorted wraps pre-sorted parallel counter columns as a Summary without
// copying: keys must be strictly ascending, counts strictly positive, and at
// most k entries. The summary borrows the slices; callers must not mutate
// them afterwards. This is the zero-copy entry point for flat extraction
// paths (sharded shard summaries, the wire decoder).
func FromSorted(k int, keys []stream.Item, counts []int64) (*Summary, error) {
	s := new(Summary)
	if err := s.SetSorted(k, keys, counts); err != nil {
		return nil, err
	}
	return s, nil
}

// SetSorted rebinds s in place to borrow the given pre-sorted columns, with
// exactly FromSorted's validation and zero allocations. It exists for
// reusable decode targets — the aggregation tier's per-connection summary
// scratch — where a fresh header per decode would be the last allocation
// standing. The previous binding is discarded; callers must not publish s
// anywhere a reader could still hold it across a rebind.
func (s *Summary) SetSorted(k int, keys []stream.Item, counts []int64) error {
	if k <= 0 {
		return fmt.Errorf("merge: k must be positive")
	}
	if len(keys) != len(counts) {
		return fmt.Errorf("merge: %d keys vs %d counts", len(keys), len(counts))
	}
	if len(keys) > k {
		return fmt.Errorf("merge: %d positive counters exceed k=%d", len(keys), k)
	}
	for i, c := range counts {
		if c <= 0 {
			return fmt.Errorf("merge: non-positive counter %d for key %d", c, keys[i])
		}
		if i > 0 && keys[i] <= keys[i-1] {
			return fmt.Errorf("merge: keys not strictly ascending at %d", i)
		}
	}
	s.K, s.keys, s.vals = k, keys, counts
	return nil
}

// Len returns the number of stored counters (at most k).
func (s *Summary) Len() int { return len(s.keys) }

// Keys returns the stored keys in strictly ascending order. The slice is
// the summary's backing storage: treat it as read-only.
func (s *Summary) Keys() []stream.Item { return s.keys }

// Counts returns the counts parallel to Keys. The slice is the summary's
// backing storage: treat it as read-only.
func (s *Summary) Counts() []int64 { return s.vals }

// At returns the i-th (key, count) pair in ascending key order.
func (s *Summary) At(i int) (stream.Item, int64) { return s.keys[i], s.vals[i] }

// CountsMap materializes the counter table as a map, for callers that need
// associative lookups (structure checks, tests). It allocates; the release
// and merge hot paths never call it.
func (s *Summary) CountsMap() map[stream.Item]int64 {
	out := make(map[stream.Item]int64, len(s.keys))
	for i, x := range s.keys {
		out[x] = s.vals[i]
	}
	return out
}

// Clone returns a deep copy with its own backing storage.
func (s *Summary) Clone() *Summary {
	return &Summary{
		K:    s.K,
		keys: slices.Clone(s.keys),
		vals: slices.Clone(s.vals),
	}
}

// CloneCompact returns a deep copy like Clone, but lays both columns in a
// single backing array (two allocations — header and block — against
// Clone's three). The root's fold path publishes one fresh immutable
// aggregate per fold for lock-free readers; the compact layout is what
// keeps that publish at two allocations per fold. The count column is the
// block's second half viewed as []int64: stream.Item and int64 are both
// 8-byte fixed-width integers, and the view shares the keys column's
// backing array, so the block stays reachable for as long as either column
// is.
func (s *Summary) CloneCompact() *Summary {
	n := len(s.keys)
	if n == 0 {
		return &Summary{K: s.K}
	}
	block := make([]stream.Item, 2*n)
	copy(block, s.keys)
	vals := unsafe.Slice((*int64)(unsafe.Pointer(&block[n])), n)
	copy(vals, s.vals)
	return &Summary{K: s.K, keys: block[:n:n], vals: vals}
}

// Estimate returns the summarized frequency of x (0 if absent) by binary
// search over the sorted keys.
func (s *Summary) Estimate(x stream.Item) int64 {
	if i, ok := slices.BinarySearch(s.keys, x); ok {
		return s.vals[i]
	}
	return 0
}

// Merge combines two size-k summaries into one size-k summary using the
// Agarwal et al. algorithm: add the counter vectors, subtract the (k+1)-th
// largest value from every counter, and drop non-positive counters. The
// result summarizes the concatenated input with error at most N/(k+1) for N
// the combined stream length (Lemma 29 via [1]). It allocates a fresh
// result; aggregation loops that merge repeatedly should hold a Merger.
func Merge(a, b *Summary) (*Summary, error) {
	var m Merger
	out, err := m.MergeAll([]*Summary{a, b})
	if err != nil {
		return nil, err
	}
	return out.Clone(), nil
}

// MergeAll merges the summaries in one multi-way pass: all counter vectors
// are added with a k-way sorted merge and the (k+1)-th largest combined
// value is subtracted once. Like the pairwise fold it replaces, the result
// summarizes the concatenation of all inputs with error at most N/(k+1)
// (the Agarwal et al. bound holds for any merge tree, the single multi-way
// node included), never overestimates, and preserves the Corollary 18
// neighbor structure; individual counters may differ from the fold's in
// either direction within those bounds. It errors on an empty input or
// mismatched sizes. It allocates a fresh result; steady-state aggregation
// loops should hold a Merger.
func MergeAll(summaries []*Summary) (*Summary, error) {
	var m Merger
	out, err := m.MergeAll(summaries)
	if err != nil {
		return nil, err
	}
	return out.Clone(), nil
}

// Merger performs multi-way merges into reusable scratch. After the first
// call its MergeAll performs zero allocations, which makes it the right
// tool for the trusted-aggregator steady state (merge shard or node
// summaries, release, repeat). A Merger is not safe for concurrent use.
type Merger struct {
	heads []int         // per-input cursor
	keys  []stream.Item // merged key accumulation, then compacted result
	vals  []int64       // parallel counts
	sel   []int64       // scratch for the (k+1)-th largest selection
	out   Summary       // result header returned by MergeAll
}

// MergeAll merges the summaries in one multi-way pass (see the package
// function of the same name for semantics). The returned summary borrows
// the Merger's scratch: it is valid until the next MergeAll call, and
// callers that retain it longer must Clone it. Feeding a previous result
// of this Merger back in as an input is safe — the Merger detects the
// aliasing and moves to fresh scratch (one reallocation) rather than
// overwrite an input it is still reading.
func (m *Merger) MergeAll(summaries []*Summary) (*Summary, error) {
	if len(summaries) == 0 {
		return nil, fmt.Errorf("merge: no summaries")
	}
	k := summaries[0].K
	total := 0
	for _, s := range summaries {
		if s.K != k {
			return nil, fmt.Errorf("merge: size mismatch k=%d vs k=%d", k, s.K)
		}
		total += s.Len()
	}
	for _, s := range summaries {
		if len(s.keys) > 0 && cap(m.keys) > 0 && &s.keys[0] == &m.keys[:1][0] {
			// The input borrows our scratch (it is a previous result of this
			// Merger): hand the arrays over to it and start fresh, so the
			// multi-way pass below never writes into a slice it reads.
			m.keys, m.vals = nil, nil
			break
		}
	}
	if cap(m.keys) < total {
		m.keys = make([]stream.Item, total)
		m.vals = make([]int64, total)
	}
	if cap(m.heads) < len(summaries) {
		m.heads = make([]int, len(summaries))
	}
	heads := m.heads[:len(summaries)]
	for i := range heads {
		heads[i] = 0
	}
	// Multi-way merge: repeatedly take the smallest head key across inputs,
	// summing equal keys. Inputs are few (shards, edge nodes), so a linear
	// scan of the heads beats a heap's branch misses.
	keys, vals := m.keys[:0], m.vals[:0]
	for {
		best := -1
		var bk stream.Item
		for i, s := range summaries {
			if heads[i] < len(s.keys) {
				if x := s.keys[heads[i]]; best < 0 || x < bk {
					best, bk = i, x
				}
			}
		}
		if best < 0 {
			break
		}
		var sum int64
		for i, s := range summaries {
			if h := heads[i]; h < len(s.keys) && s.keys[h] == bk {
				sum += s.vals[h]
				heads[i] = h + 1
			}
		}
		keys = append(keys, bk)
		vals = append(vals, sum)
	}
	// Subtract the (k+1)-th largest combined value and compact in place.
	if sub := m.kPlusFirstLargest(vals, k); sub > 0 {
		j := 0
		for i, c := range vals {
			if c > sub {
				keys[j], vals[j] = keys[i], c-sub
				j++
			}
		}
		keys, vals = keys[:j], vals[:j]
	}
	m.keys, m.vals = keys, vals // prefixes of the backing arrays; caps retained
	m.out = Summary{K: k, keys: m.keys, vals: m.vals}
	return &m.out, nil
}

// kPlusFirstLargest returns the (k+1)-th largest of vals, or 0 when fewer
// than k+1 values exist (then nothing needs subtracting). It sorts a copy
// in the Merger's scratch; vals is left untouched.
func (m *Merger) kPlusFirstLargest(vals []int64, k int) int64 {
	if len(vals) <= k {
		return 0
	}
	if cap(m.sel) < len(vals) {
		m.sel = make([]int64, len(vals))
	}
	sel := m.sel[:len(vals)]
	copy(sel, vals)
	slices.Sort(sel)
	return sel[len(sel)-1-k]
}

// CheckNeighborStructure verifies the Lemma 17 / Corollary 18 invariant on
// two merged counter tables from neighboring inputs: one table's key set
// contains the other's and counters differ by at most 1, all in the same
// direction. This is the same structure as pamg.CheckNeighborStructure and
// is what qualifies merged sketches for the Gaussian Sparse Histogram
// Mechanism with l = k.
func CheckNeighborStructure(c, cPrime map[stream.Item]int64) error {
	if oneSided(c, cPrime) || oneSided(cPrime, c) {
		return nil
	}
	return fmt.Errorf("merge: Lemma 17 structure violated: %v vs %v", c, cPrime)
}

func oneSided(hi, lo map[stream.Item]int64) bool {
	for x := range lo {
		if _, ok := hi[x]; !ok {
			return false
		}
	}
	for x, h := range hi {
		d := h - lo[x]
		if d != 0 && d != 1 {
			return false
		}
	}
	return true
}
