// Package merge implements the Misra-Gries merging algorithm of Agarwal,
// Cormode, Huang, Phillips, Wei and Yi ("Mergeable summaries") that
// Section 7 of the paper builds on, together with the sensitivity facts the
// paper proves about it: merging preserves the "counters differ by at most
// one" structure of neighboring sketches (Lemma 17, Corollary 18), so a
// merged sketch can be released with noise calibrated to l1-sensitivity k
// or l2-sensitivity sqrt(k) regardless of how many merges happened.
package merge

import (
	"fmt"
	"sort"

	"dpmg/internal/stream"
)

// Summary is a mergeable Misra-Gries summary: at most k strictly positive
// counters. It is the Section 7 object of study — zero-count keys are not
// stored (unlike the Algorithm 1 sketch).
type Summary struct {
	K      int
	Counts map[stream.Item]int64
}

// FromCounters builds a Summary from a counter table, dropping non-positive
// counters and any dummy keys above the universe bound (pass universe = 0 to
// keep all keys). It errors if more than k positive counters remain.
func FromCounters(k int, universe uint64, counts map[stream.Item]int64) (*Summary, error) {
	if k <= 0 {
		return nil, fmt.Errorf("merge: k must be positive")
	}
	out := make(map[stream.Item]int64)
	for x, c := range counts {
		if c <= 0 {
			continue
		}
		if universe > 0 && uint64(x) > universe {
			continue
		}
		out[x] = c
	}
	if len(out) > k {
		return nil, fmt.Errorf("merge: %d positive counters exceed k=%d", len(out), k)
	}
	return &Summary{K: k, Counts: out}, nil
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	out := make(map[stream.Item]int64, len(s.Counts))
	for x, c := range s.Counts {
		out[x] = c
	}
	return &Summary{K: s.K, Counts: out}
}

// Estimate returns the summarized frequency of x (0 if absent).
func (s *Summary) Estimate(x stream.Item) int64 { return s.Counts[x] }

// Merge combines two size-k summaries into one size-k summary using the
// Agarwal et al. algorithm: add the counter vectors, subtract the (k+1)-th
// largest value from every counter, and drop non-positive counters. The
// result summarizes the concatenated input with error at most N/(k+1) for N
// the combined stream length (Lemma 29 via [1]).
func Merge(a, b *Summary) (*Summary, error) {
	if a.K != b.K {
		return nil, fmt.Errorf("merge: size mismatch k=%d vs k=%d", a.K, b.K)
	}
	k := a.K
	combined := make(map[stream.Item]int64, len(a.Counts)+len(b.Counts))
	for x, c := range a.Counts {
		combined[x] = c
	}
	for x, c := range b.Counts {
		combined[x] += c
	}
	sub := kPlusFirstLargest(combined, k)
	out := make(map[stream.Item]int64, k)
	for x, c := range combined {
		if c > sub {
			out[x] = c - sub
		}
	}
	return &Summary{K: k, Counts: out}, nil
}

// MergeAll left-folds Merge over the summaries in order. It errors on an
// empty input or mismatched sizes.
func MergeAll(summaries []*Summary) (*Summary, error) {
	if len(summaries) == 0 {
		return nil, fmt.Errorf("merge: no summaries")
	}
	acc := summaries[0].Clone()
	for _, s := range summaries[1:] {
		next, err := Merge(acc, s)
		if err != nil {
			return nil, err
		}
		acc = next
	}
	return acc, nil
}

// kPlusFirstLargest returns the (k+1)-th largest counter value, or 0 when
// fewer than k+1 counters exist (then nothing needs subtracting).
func kPlusFirstLargest(counts map[stream.Item]int64, k int) int64 {
	if len(counts) <= k {
		return 0
	}
	vals := make([]int64, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	return vals[k]
}

// CheckNeighborStructure verifies the Lemma 17 / Corollary 18 invariant on
// two merged counter tables from neighboring inputs: one table's key set
// contains the other's and counters differ by at most 1, all in the same
// direction. This is the same structure as pamg.CheckNeighborStructure and
// is what qualifies merged sketches for the Gaussian Sparse Histogram
// Mechanism with l = k.
func CheckNeighborStructure(c, cPrime map[stream.Item]int64) error {
	if oneSided(c, cPrime) || oneSided(cPrime, c) {
		return nil
	}
	return fmt.Errorf("merge: Lemma 17 structure violated: %v vs %v", c, cPrime)
}

func oneSided(hi, lo map[stream.Item]int64) bool {
	for x := range lo {
		if _, ok := hi[x]; !ok {
			return false
		}
	}
	for x, h := range hi {
		d := h - lo[x]
		if d != 0 && d != 1 {
			return false
		}
	}
	return true
}
