package merge

import (
	"testing"

	"dpmg/internal/core"
	"dpmg/internal/hist"
	"dpmg/internal/mg"
	"dpmg/internal/noise"
	"dpmg/internal/puredp"
	"dpmg/internal/stream"
	"dpmg/internal/workload"
)

func partStreams(l, n, d int, seed uint64) ([]stream.Stream, stream.Stream) {
	var parts []stream.Stream
	var all stream.Stream
	for i := 0; i < l; i++ {
		s := workload.HeavyTail(n, d, 4, 0.8, seed+uint64(i))
		parts = append(parts, s)
		all = append(all, s...)
	}
	return parts, all
}

func TestMergeNoisy(t *testing.T) {
	a := hist.Estimate{1: 10, 2: 4}
	b := hist.Estimate{3: 7}
	m := MergeNoisy(a, b, 2)
	// values 10,7,4 -> subtract 4 -> {1:6, 3:3}
	if len(m) != 2 || m[1] != 6 || m[3] != 3 {
		t.Fatalf("MergeNoisy = %v", m)
	}
	// Under k: exact addition.
	m2 := MergeNoisy(hist.Estimate{1: 1}, hist.Estimate{2: 2}, 4)
	if len(m2) != 2 || m2[1] != 1 || m2[2] != 2 {
		t.Fatalf("MergeNoisy small = %v", m2)
	}
}

func TestUntrustedAggregateRecoversHeavy(t *testing.T) {
	k := 32
	d := 200
	parts, all := partStreams(4, 100000, d, 10)
	p := core.Params{Eps: 1, Delta: 1e-6}
	rel, err := UntrustedAggregate(parts, k, uint64(d), p, noise.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	f := hist.Exact(all)
	for _, x := range hist.TopK(f, 4) {
		if _, ok := rel[x]; !ok {
			t.Errorf("heavy item %d missed", x)
		}
	}
}

func TestUntrustedErrorGrowsWithMerges(t *testing.T) {
	// The defining Section 7 behavior: "the error from the thresholding step
	// of Algorithm 2 scales linearly in the number of sketches for
	// worst-case input". Worst case: an item sitting just below the
	// threshold in every local stream is dropped by every local release, so
	// the aggregate loses ~threshold per sketch. Use k >= d so the sketches
	// themselves are exact and only the privacy error remains.
	k, d := 16, 10
	p := core.Params{Eps: 1, Delta: 1e-6}
	below := int(p.Threshold()) - 5 // per-part count of the victim item
	errAt := func(l int) float64 {
		var parts []stream.Stream
		var all stream.Stream
		for i := 0; i < l; i++ {
			var s stream.Stream
			for j := 0; j < below; j++ {
				s = append(s, 1)
			}
			for j := 0; j < 1000; j++ {
				s = append(s, stream.Item(2+j%(d-1)))
			}
			parts = append(parts, s)
			all = append(all, s...)
		}
		f := hist.Exact(all)
		var sum float64
		for seed := uint64(0); seed < 5; seed++ {
			rel, err := UntrustedAggregate(parts, k, uint64(d), p, noise.NewSource(seed))
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(f[1]) - rel[1] // victim item's lost mass
		}
		return sum / 5
	}
	e2, e16 := errAt(2), errAt(16)
	if e16 < 4*e2 {
		t.Errorf("threshold loss should grow ~linearly with merges: l=2 %v, l=16 %v", e2, e16)
	}
}

func TestTrustedAggregateLaplace(t *testing.T) {
	k := 32
	d := uint64(200)
	parts, all := partStreams(8, 50000, int(d), 20)
	var reduced []map[stream.Item]float64
	for _, str := range parts {
		sk := mg.New(k, d)
		sk.Process(str)
		reduced = append(reduced, puredp.Reduce(sk).Counts)
	}
	rel, err := TrustedAggregateLaplace(reduced, 1, 1e-6, noise.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	f := hist.Exact(all)
	for _, x := range hist.TopK(f, 4) {
		if _, ok := rel[x]; !ok {
			t.Errorf("heavy item %d missed", x)
		}
	}
	// Error must be bounded by total sketch error + small noise: each part
	// contributes n/(k+1) sketch+reduction error.
	bound := float64(len(all))/float64(k+1) + 100
	if got := hist.MaxError(rel, f); got > bound {
		t.Errorf("trusted error %v > bound %v", got, bound)
	}
}

func TestTrustedAggregateBounded(t *testing.T) {
	k := 16
	d := uint64(100)
	parts, all := partStreams(64, 20000, int(d), 30)
	var summaries []*Summary
	for _, str := range parts {
		sk := mg.New(k, d)
		sk.Process(str)
		s, err := FromCounters(k, d, sk.Counters())
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, s)
	}
	rel, err := TrustedAggregateBounded(summaries, 1, 1e-6, noise.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	f := hist.Exact(all)
	for _, x := range hist.TopK(f, 2) {
		if _, ok := rel[x]; !ok {
			t.Errorf("heavy item %d missed", x)
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := UntrustedAggregate(nil, 4, 10, core.Params{Eps: 1, Delta: 1e-6}, noise.NewSource(1)); err == nil {
		t.Error("empty streams accepted")
	}
	if _, err := TrustedAggregateLaplace(nil, 1, 1e-6, noise.NewSource(1)); err == nil {
		t.Error("empty tables accepted")
	}
	if _, err := TrustedAggregateLaplace([]map[stream.Item]float64{{}}, 0, 1e-6, noise.NewSource(1)); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := TrustedAggregateBounded(nil, 1, 1e-6, noise.NewSource(1)); err == nil {
		t.Error("empty summaries accepted")
	}
	if _, err := TrustedAggregateBounded([]*Summary{{K: 2}}, 1, 2, noise.NewSource(1)); err == nil {
		t.Error("delta=2 accepted")
	}
}
