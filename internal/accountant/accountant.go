// Package accountant tracks cumulative privacy loss across multiple
// releases of the same data. The paper's mechanisms are analyzed for a
// single release; real deployments that publish repeatedly (dashboards,
// continual monitoring as in Chan et al.) must compose. This package
// implements the two standard composition theorems for (eps, delta)-DP:
//
//   - basic composition: k releases at (eps_i, delta_i) cost
//     (sum eps_i, sum delta_i) (Dwork & Roth, Thm 3.16);
//   - advanced composition: k releases at (eps, delta) cost
//     (eps·sqrt(2k·ln(1/delta')) + k·eps·(e^eps - 1), k·delta + delta')
//     for any slack delta' > 0 (Dwork & Roth, Thm 3.20).
//
// An Accountant is given a total budget up front and admits or refuses
// individual releases against it.
package accountant

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrExhausted is wrapped by every Spend error that rejects a release
// because the remaining budget cannot cover it, so callers (the release
// front-end, the dpmg-server) can distinguish "out of budget" from
// calibration or input errors with errors.Is.
var ErrExhausted = errors.New("privacy budget exhausted")

// Budget is a total (eps, delta) allowance.
type Budget struct {
	Eps   float64
	Delta float64
}

// Valid reports whether the budget is usable.
func (b Budget) Valid() error {
	if b.Eps <= 0 {
		return fmt.Errorf("accountant: eps budget must be positive, got %v", b.Eps)
	}
	if b.Delta < 0 || b.Delta >= 1 {
		return fmt.Errorf("accountant: delta budget must be in [0,1), got %v", b.Delta)
	}
	return nil
}

// Accountant admits releases until the budget under basic composition is
// exhausted. It is safe for concurrent use.
type Accountant struct {
	mu       sync.Mutex
	budget   Budget
	spentEps float64
	spentDel float64
	releases int
}

// New returns an accountant over the given total budget.
func New(budget Budget) (*Accountant, error) {
	if err := budget.Valid(); err != nil {
		return nil, err
	}
	return &Accountant{budget: budget}, nil
}

// Spend admits a release costing (eps, delta) if it fits the remaining
// budget under basic composition, atomically recording it. It returns an
// error (and records nothing) otherwise.
func (a *Accountant) Spend(eps, delta float64) error {
	if eps <= 0 || delta < 0 {
		return fmt.Errorf("accountant: invalid spend (%v, %v)", eps, delta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spentEps+eps > a.budget.Eps+1e-12 {
		return fmt.Errorf("accountant: eps budget exceeded: spent %v + %v > %v: %w",
			a.spentEps, eps, a.budget.Eps, ErrExhausted)
	}
	if a.spentDel+delta > a.budget.Delta+1e-18 {
		return fmt.Errorf("accountant: delta budget exceeded: spent %v + %v > %v: %w",
			a.spentDel, delta, a.budget.Delta, ErrExhausted)
	}
	a.spentEps += eps
	a.spentDel += delta
	a.releases++
	return nil
}

// Remaining returns the unspent budget under basic composition.
func (a *Accountant) Remaining() Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Budget{Eps: a.budget.Eps - a.spentEps, Delta: a.budget.Delta - a.spentDel}
}

// Spent returns the budget consumed so far under basic composition.
func (a *Accountant) Spent() Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Budget{Eps: a.spentEps, Delta: a.spentDel}
}

// Total returns the accountant's full budget.
func (a *Accountant) Total() Budget {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// State returns the full account — total budget, spend so far, and
// admitted-release count — read under one lock acquisition, so the triple
// is a consistent linearization point even while concurrent Spends run.
// Snapshot paths must use this rather than separate Spent/Releases calls:
// a pair of reads can otherwise straddle a Spend and persist a release
// count whose budget charge is missing.
func (a *Accountant) State() (total, spent Budget, releases int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget, Budget{Eps: a.spentEps, Delta: a.spentDel}, a.releases
}

// Restore reconstructs an accountant in a mid-life state — total budget,
// spend so far, and admitted-release count — so durable deployments (the
// dpmg-server manager snapshot) can resume metering after a restart with
// exactly the remaining budget they went down with. The spent state is
// validated against the budget with the same tolerances Spend applies, so
// tampered or corrupted snapshots fail loudly instead of minting budget.
func Restore(total, spent Budget, releases int) (*Accountant, error) {
	if err := total.Valid(); err != nil {
		return nil, err
	}
	for _, v := range []float64{total.Eps, total.Delta, spent.Eps, spent.Delta} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("accountant: non-finite budget value %v", v)
		}
	}
	if spent.Eps < 0 || spent.Delta < 0 {
		return nil, fmt.Errorf("accountant: negative spent budget (%v, %v)", spent.Eps, spent.Delta)
	}
	if spent.Eps > total.Eps+1e-12 {
		return nil, fmt.Errorf("accountant: spent eps %v exceeds budget %v", spent.Eps, total.Eps)
	}
	if spent.Delta > total.Delta+1e-18 {
		return nil, fmt.Errorf("accountant: spent delta %v exceeds budget %v", spent.Delta, total.Delta)
	}
	if releases < 0 {
		return nil, fmt.Errorf("accountant: negative release count %d", releases)
	}
	if releases == 0 && (spent.Eps != 0 || spent.Delta != 0) {
		return nil, fmt.Errorf("accountant: nonzero spend (%v, %v) with zero releases", spent.Eps, spent.Delta)
	}
	return &Accountant{
		budget:   total,
		spentEps: spent.Eps,
		spentDel: spent.Delta,
		releases: releases,
	}, nil
}

// Releases returns how many releases have been admitted.
func (a *Accountant) Releases() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.releases
}

// BasicCompose returns the total cost of k releases each at (eps, delta).
func BasicCompose(eps, delta float64, k int) Budget {
	return Budget{Eps: float64(k) * eps, Delta: float64(k) * delta}
}

// AdvancedCompose returns the total cost of k releases each at (eps, delta)
// under the advanced composition theorem with slack deltaPrime.
func AdvancedCompose(eps, delta, deltaPrime float64, k int) Budget {
	kf := float64(k)
	return Budget{
		Eps:   eps*math.Sqrt(2*kf*math.Log(1/deltaPrime)) + kf*eps*(math.Exp(eps)-1),
		Delta: kf*delta + deltaPrime,
	}
}

// PerReleaseEps inverts advanced composition: the largest per-release eps
// (at the given per-release delta) such that k releases stay within the
// total budget with slack deltaPrime. It returns an error when even
// arbitrarily small releases cannot fit (delta exhausted). Found by
// bisection; AdvancedCompose is monotone in eps.
func PerReleaseEps(total Budget, delta, deltaPrime float64, k int) (float64, error) {
	if err := total.Valid(); err != nil {
		return 0, err
	}
	if k <= 0 {
		return 0, fmt.Errorf("accountant: k must be positive, got %d", k)
	}
	if float64(k)*delta+deltaPrime > total.Delta {
		return 0, fmt.Errorf("accountant: delta budget %v cannot cover k·delta + delta' = %v",
			total.Delta, float64(k)*delta+deltaPrime)
	}
	lo, hi := 0.0, total.Eps
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if AdvancedCompose(mid, delta, deltaPrime, k).Eps <= total.Eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, fmt.Errorf("accountant: no positive per-release eps fits")
	}
	return lo, nil
}

// BestPerReleaseEps returns the larger of the basic-composition split
// (total.Eps/k) and the advanced-composition solution: for small k basic
// composition is better, for large k advanced wins.
func BestPerReleaseEps(total Budget, delta, deltaPrime float64, k int) (float64, error) {
	basic := total.Eps / float64(k)
	if float64(k)*delta > total.Delta {
		return 0, fmt.Errorf("accountant: delta budget cannot cover k releases")
	}
	adv, err := PerReleaseEps(total, delta, deltaPrime, k)
	if err != nil || adv < basic {
		return basic, nil
	}
	return adv, nil
}
