package accountant

import (
	"math"
	"sync"
	"testing"
)

func TestBudgetValid(t *testing.T) {
	bad := []Budget{{0, 0.1}, {-1, 0.1}, {1, -0.1}, {1, 1}}
	for _, b := range bad {
		if b.Valid() == nil {
			t.Errorf("budget %+v accepted", b)
		}
	}
	if (Budget{1, 0}).Valid() != nil {
		t.Error("pure-DP budget rejected")
	}
}

func TestSpendWithinBudget(t *testing.T) {
	a, err := New(Budget{Eps: 1, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := a.Spend(0.25, 25e-8); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	if err := a.Spend(0.01, 0); err == nil {
		t.Error("overspend admitted")
	}
	if a.Releases() != 4 {
		t.Errorf("releases = %d", a.Releases())
	}
	rem := a.Remaining()
	if math.Abs(rem.Eps) > 1e-9 {
		t.Errorf("remaining eps = %v", rem.Eps)
	}
}

func TestSpendDeltaExhaustion(t *testing.T) {
	a, _ := New(Budget{Eps: 10, Delta: 1e-6})
	if err := a.Spend(1, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(1, 1e-9); err == nil {
		t.Error("delta overspend admitted")
	}
	// A pure-DP spend must still be admitted.
	if err := a.Spend(1, 0); err != nil {
		t.Errorf("pure spend rejected: %v", err)
	}
}

func TestSpendRejectsInvalid(t *testing.T) {
	a, _ := New(Budget{Eps: 1, Delta: 0.1})
	if err := a.Spend(0, 0); err == nil {
		t.Error("eps=0 spend admitted")
	}
	if err := a.Spend(0.1, -1); err == nil {
		t.Error("negative delta admitted")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Budget{Eps: 0, Delta: 0}); err == nil {
		t.Error("invalid budget accepted")
	}
}

func TestConcurrentSpendNeverOverspends(t *testing.T) {
	a, _ := New(Budget{Eps: 1, Delta: 0.1})
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if a.Spend(0.1, 0.001) == nil {
				admitted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for range admitted {
		n++
	}
	if n != 10 {
		t.Errorf("admitted %d spends of 0.1 against budget 1", n)
	}
}

func TestBasicCompose(t *testing.T) {
	b := BasicCompose(0.5, 1e-7, 4)
	if b.Eps != 2 || math.Abs(b.Delta-4e-7) > 1e-18 {
		t.Errorf("BasicCompose = %+v", b)
	}
}

func TestAdvancedComposeFormula(t *testing.T) {
	eps, delta, dp := 0.1, 1e-8, 1e-6
	k := 100
	b := AdvancedCompose(eps, delta, dp, k)
	wantEps := eps*math.Sqrt(2*100*math.Log(1/dp)) + 100*eps*(math.Exp(eps)-1)
	if math.Abs(b.Eps-wantEps) > 1e-12 {
		t.Errorf("eps = %v want %v", b.Eps, wantEps)
	}
	if math.Abs(b.Delta-(100*delta+dp)) > 1e-18 {
		t.Errorf("delta = %v", b.Delta)
	}
}

func TestAdvancedBeatsBasicForManyReleases(t *testing.T) {
	// For many small releases the advanced bound is sublinear in k.
	eps := 0.01
	k := 10000
	adv := AdvancedCompose(eps, 0, 1e-6, k)
	basic := BasicCompose(eps, 0, k)
	if adv.Eps >= basic.Eps {
		t.Errorf("advanced %v should beat basic %v at k=%d", adv.Eps, basic.Eps, k)
	}
}

func TestPerReleaseEpsInvertsAdvanced(t *testing.T) {
	total := Budget{Eps: 1, Delta: 1e-5}
	delta, dp := 1e-8, 1e-6
	k := 50
	per, err := PerReleaseEps(total, delta, dp, k)
	if err != nil {
		t.Fatal(err)
	}
	got := AdvancedCompose(per, delta, dp, k)
	if got.Eps > total.Eps*(1+1e-9) {
		t.Errorf("composed eps %v exceeds budget %v", got.Eps, total.Eps)
	}
	// Near-tight: 1% more per release must blow the budget.
	if AdvancedCompose(per*1.01, delta, dp, k).Eps <= total.Eps {
		t.Error("PerReleaseEps not tight")
	}
}

func TestPerReleaseEpsDeltaGate(t *testing.T) {
	if _, err := PerReleaseEps(Budget{Eps: 1, Delta: 1e-8}, 1e-8, 1e-6, 10); err == nil {
		t.Error("impossible delta split accepted")
	}
	if _, err := PerReleaseEps(Budget{Eps: 1, Delta: 0.1}, 0, 1e-6, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBestPerReleaseEps(t *testing.T) {
	total := Budget{Eps: 1, Delta: 1e-4}
	// Few releases: basic split wins.
	few, err := BestPerReleaseEps(total, 1e-8, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(few-0.5) > 1e-9 {
		t.Errorf("k=2 best = %v, want basic 0.5", few)
	}
	// Many releases: advanced wins, so per-release eps > eps/k.
	many, err := BestPerReleaseEps(total, 1e-9, 1e-6, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if many <= total.Eps/5000 {
		t.Errorf("k=5000 best = %v, should beat basic %v", many, total.Eps/5000)
	}
	if _, err := BestPerReleaseEps(total, 1e-3, 1e-6, 5000); err == nil {
		t.Error("delta overflow accepted")
	}
}

func TestSpentTotalRestore(t *testing.T) {
	total := Budget{Eps: 2, Delta: 1e-4}
	a, err := New(total)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.5, 1e-5); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.25, 2e-5); err != nil {
		t.Fatal(err)
	}
	if got := a.Total(); got != total {
		t.Errorf("Total = %+v, want %+v", got, total)
	}
	spent := a.Spent()
	if spent.Eps != 0.75 || math.Abs(spent.Delta-3e-5) > 1e-18 {
		t.Errorf("Spent = %+v", spent)
	}

	// A restored accountant must behave identically to the original: same
	// remaining budget, same release count, same admit/refuse boundary.
	b, err := Restore(total, spent, a.Releases())
	if err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != a.Remaining() {
		t.Errorf("restored Remaining = %+v, want %+v", b.Remaining(), a.Remaining())
	}
	if b.Releases() != 2 {
		t.Errorf("restored Releases = %d", b.Releases())
	}
	if err := b.Spend(1.3, 0); err == nil {
		t.Error("restored accountant admitted an over-budget spend")
	}
	if err := b.Spend(1.25, 0); err != nil {
		t.Errorf("restored accountant refused an in-budget spend: %v", err)
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	total := Budget{Eps: 1, Delta: 1e-4}
	cases := []struct {
		name     string
		total    Budget
		spent    Budget
		releases int
	}{
		{"eps overspent", total, Budget{Eps: 1.5, Delta: 0}, 1},
		{"delta overspent", total, Budget{Eps: 0.5, Delta: 1e-3}, 1},
		{"negative spent", total, Budget{Eps: -0.1, Delta: 0}, 1},
		{"negative releases", total, Budget{Eps: 0.1, Delta: 0}, -1},
		{"spend without releases", total, Budget{Eps: 0.1, Delta: 0}, 0},
		{"nan spent", total, Budget{Eps: math.NaN(), Delta: 0}, 1},
		{"inf spent", total, Budget{Eps: math.Inf(1), Delta: 0}, 1},
		{"bad total", Budget{Eps: -1, Delta: 0}, Budget{}, 0},
	}
	for _, tc := range cases {
		if _, err := Restore(tc.total, tc.spent, tc.releases); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Zero spend with zero releases is the fresh state and must restore.
	if _, err := Restore(total, Budget{}, 0); err != nil {
		t.Errorf("fresh state rejected: %v", err)
	}
}
