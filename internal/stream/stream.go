// Package stream defines the input model of the paper (Section 3): a totally
// ordered universe U = [d], element streams (Section 5), and user-set streams
// where each stream item is a set of up to m distinct elements (Section 8).
// It also implements the add/remove neighboring relation (Definition 3) used
// throughout the tests and the empirical sensitivity experiments.
package stream

import (
	"fmt"
	"sort"
)

// Item identifies a universe element. The universe is [d] = {1, ..., d};
// items compare by their numeric value, which supplies the total order the
// paper assumes (Section 3). Item 0 is reserved as "no item". Values above a
// sketch's configured universe size act as the dummy keys of Algorithm 1.
type Item uint64

// Stream is a finite stream of single elements, the input model of
// Sections 5-7.
type Stream []Item

// SetStream is a finite stream of user contributions, each a set of distinct
// elements, the input model of Section 8.
type SetStream [][]Item

// Clone returns a deep copy of s.
func (s Stream) Clone() Stream {
	out := make(Stream, len(s))
	copy(out, s)
	return out
}

// RemoveAt returns a copy of s with the element at index i removed. The
// result is a neighbor of s under Definition 3.
func (s Stream) RemoveAt(i int) Stream {
	if i < 0 || i >= len(s) {
		panic(fmt.Sprintf("stream: RemoveAt index %d out of range [0,%d)", i, len(s)))
	}
	out := make(Stream, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// InsertAt returns a copy of s with x inserted before index i
// (i may equal len(s) to append). The result is a neighbor of s.
func (s Stream) InsertAt(i int, x Item) Stream {
	if i < 0 || i > len(s) {
		panic(fmt.Sprintf("stream: InsertAt index %d out of range [0,%d]", i, len(s)))
	}
	out := make(Stream, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// Clone returns a deep copy of s.
func (s SetStream) Clone() SetStream {
	out := make(SetStream, len(s))
	for i, set := range s {
		out[i] = append([]Item(nil), set...)
	}
	return out
}

// RemoveAt returns a copy of s with the user at index i removed; the result
// is a neighbor of s under the user-level relation of Section 8.
func (s SetStream) RemoveAt(i int) SetStream {
	if i < 0 || i >= len(s) {
		panic(fmt.Sprintf("stream: RemoveAt index %d out of range [0,%d)", i, len(s)))
	}
	out := make(SetStream, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out.Clone()
}

// TotalLen returns N = sum over users of |S_i|, the total number of stream
// elements (Section 8 uses N in the error bounds).
func (s SetStream) TotalLen() int {
	n := 0
	for _, set := range s {
		n += len(set)
	}
	return n
}

// MaxSetSize returns the largest user contribution m = max |S_i|.
func (s SetStream) MaxSetSize() int {
	m := 0
	for _, set := range s {
		if len(set) > m {
			m = len(set)
		}
	}
	return m
}

// Validate checks that every user set is non-empty, contains distinct
// elements none of which is the reserved item 0, and has size at most maxM
// (ignored when maxM <= 0). These are the standing assumptions of
// Section 8; rejecting item 0 here (rather than panicking downstream)
// keeps batch ingest atomic — a bad set is reported before any set in the
// batch is applied.
func (s SetStream) Validate(maxM int) error {
	for i, set := range s {
		if len(set) == 0 {
			return fmt.Errorf("stream: user %d contributes an empty set", i)
		}
		if maxM > 0 && len(set) > maxM {
			return fmt.Errorf("stream: user %d contributes %d elements, max %d", i, len(set), maxM)
		}
		seen := make(map[Item]struct{}, len(set))
		for _, x := range set {
			if x == 0 {
				return fmt.Errorf("stream: user %d contributes reserved item 0", i)
			}
			if _, dup := seen[x]; dup {
				return fmt.Errorf("stream: user %d contributes duplicate element %d", i, x)
			}
			seen[x] = struct{}{}
		}
	}
	return nil
}

// Flatten converts a user-set stream into an element stream by iterating
// over each user's elements in ascending order, the fixed order the paper
// prescribes for Ŝ in Section 8.
func (s SetStream) Flatten() Stream {
	out := make(Stream, 0, s.TotalLen())
	buf := make([]Item, 0, 16)
	for _, set := range s {
		buf = append(buf[:0], set...)
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		out = append(out, buf...)
	}
	return out
}

// Singletons lifts an element stream into the set-stream model, one
// singleton set per element, so that element streams are the special case
// |S_i| = 1 exactly as in Section 3.
func Singletons(s Stream) SetStream {
	out := make(SetStream, len(s))
	for i, x := range s {
		out[i] = []Item{x}
	}
	return out
}
