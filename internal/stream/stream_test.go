package stream

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRemoveAt(t *testing.T) {
	s := Stream{1, 2, 3, 4}
	got := s.RemoveAt(1)
	if !reflect.DeepEqual(got, Stream{1, 3, 4}) {
		t.Errorf("RemoveAt(1) = %v", got)
	}
	if !reflect.DeepEqual(s, Stream{1, 2, 3, 4}) {
		t.Errorf("original mutated: %v", s)
	}
	if !reflect.DeepEqual(s.RemoveAt(0), Stream{2, 3, 4}) {
		t.Error("RemoveAt(0) wrong")
	}
	if !reflect.DeepEqual(s.RemoveAt(3), Stream{1, 2, 3}) {
		t.Error("RemoveAt(last) wrong")
	}
}

func TestRemoveAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Stream{1}.RemoveAt(1)
}

func TestInsertAt(t *testing.T) {
	s := Stream{1, 3}
	if got := s.InsertAt(1, 2); !reflect.DeepEqual(got, Stream{1, 2, 3}) {
		t.Errorf("InsertAt(1,2) = %v", got)
	}
	if got := s.InsertAt(0, 9); !reflect.DeepEqual(got, Stream{9, 1, 3}) {
		t.Errorf("InsertAt(0,9) = %v", got)
	}
	if got := s.InsertAt(2, 9); !reflect.DeepEqual(got, Stream{1, 3, 9}) {
		t.Errorf("append = %v", got)
	}
}

func TestInsertRemoveInverse(t *testing.T) {
	// Property: RemoveAt(i) after InsertAt(i, x) is the identity.
	f := func(raw []uint16, pos uint8, x uint16) bool {
		s := make(Stream, len(raw))
		for i, v := range raw {
			s[i] = Item(v) + 1
		}
		i := 0
		if len(s) > 0 {
			i = int(pos) % (len(s) + 1)
		}
		return reflect.DeepEqual(s.InsertAt(i, Item(x)+1).RemoveAt(i), s) ||
			len(s) == 0 && len(s.InsertAt(0, Item(x)+1).RemoveAt(0)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Stream{1, 2}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone shares backing array")
	}

	ss := SetStream{{1, 2}, {3}}
	cc := ss.Clone()
	cc[0][0] = 99
	if ss[0][0] != 1 {
		t.Error("SetStream.Clone shares inner slices")
	}
}

func TestSetStreamRemoveAt(t *testing.T) {
	ss := SetStream{{1}, {2, 3}, {4}}
	got := ss.RemoveAt(1)
	want := SetStream{{1}, {4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveAt = %v", got)
	}
	// Mutating the result must not touch the original.
	got[0][0] = 77
	if ss[0][0] != 1 {
		t.Error("RemoveAt result aliases original")
	}
}

func TestTotalLenAndMaxSetSize(t *testing.T) {
	ss := SetStream{{1, 2, 3}, {4}, {5, 6}}
	if ss.TotalLen() != 6 {
		t.Errorf("TotalLen = %d", ss.TotalLen())
	}
	if ss.MaxSetSize() != 3 {
		t.Errorf("MaxSetSize = %d", ss.MaxSetSize())
	}
	if (SetStream{}).MaxSetSize() != 0 {
		t.Error("empty MaxSetSize != 0")
	}
}

func TestValidate(t *testing.T) {
	if err := (SetStream{{1, 2}, {3}}).Validate(2); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
	if err := (SetStream{{}}).Validate(0); err == nil {
		t.Error("empty set accepted")
	}
	if err := (SetStream{{1, 1}}).Validate(0); err == nil {
		t.Error("duplicate accepted")
	}
	if err := (SetStream{{1, 2, 3}}).Validate(2); err == nil {
		t.Error("oversized set accepted")
	}
	if err := (SetStream{{1, 2, 3}}).Validate(0); err != nil {
		t.Errorf("maxM<=0 should disable the size check: %v", err)
	}
}

func TestFlattenOrder(t *testing.T) {
	ss := SetStream{{3, 1, 2}, {5, 4}}
	got := ss.Flatten()
	want := Stream{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Flatten = %v want %v", got, want)
	}
	// Flatten must not reorder the caller's sets.
	if !reflect.DeepEqual(ss[0], []Item{3, 1, 2}) {
		t.Error("Flatten mutated input")
	}
}

func TestSingletonsRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		s := make(Stream, len(raw))
		for i, v := range raw {
			s[i] = Item(v) + 1
		}
		ss := Singletons(s)
		if ss.TotalLen() != len(s) || (len(s) > 0 && ss.MaxSetSize() != 1) {
			return false
		}
		return reflect.DeepEqual(ss.Flatten(), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a != 1 || b != 2 {
		t.Errorf("Intern ids = %d, %d", a, b)
	}
	if d.Intern("alpha") != a {
		t.Error("re-Intern changed id")
	}
	if got, ok := d.Lookup("beta"); !ok || got != b {
		t.Error("Lookup failed")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup invented an entry")
	}
	if d.Name(a) != "alpha" || d.Name(99) != "" || d.Name(0) != "" {
		t.Error("Name mapping wrong")
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestDictionaryFreeze(t *testing.T) {
	d := NewDictionary()
	d.Intern("a")
	d.Freeze()
	if d.Intern("a") != 1 {
		t.Error("frozen dictionary must still resolve known names")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic interning a new name after Freeze")
		}
	}()
	d.Intern("b")
}

func TestNeighborPairLengths(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(50)
		s := make(Stream, n)
		for i := range s {
			s[i] = Item(rng.IntN(10) + 1)
		}
		i := rng.IntN(n)
		nb := s.RemoveAt(i)
		if len(nb) != n-1 {
			t.Fatalf("neighbor length %d want %d", len(nb), n-1)
		}
	}
}
