package stream

import "fmt"

// Dictionary maps application-level string keys (URLs, flow identifiers,
// search queries, ...) to universe items 1..d and back. The sketches operate
// on Items; applications that stream strings attach a Dictionary in front.
// The zero value is not usable; construct with NewDictionary.
type Dictionary struct {
	toItem map[string]Item
	toName []string // index i holds the name of Item(i+1)
	frozen bool
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{toItem: make(map[string]Item)}
}

// Intern returns the Item for name, assigning the next free identifier on
// first use. It panics if the dictionary has been frozen.
func (d *Dictionary) Intern(name string) Item {
	if it, ok := d.toItem[name]; ok {
		return it
	}
	if d.frozen {
		panic(fmt.Sprintf("stream: Intern(%q) on frozen dictionary", name))
	}
	it := Item(len(d.toName) + 1)
	d.toItem[name] = it
	d.toName = append(d.toName, name)
	return it
}

// Lookup returns the Item for name if it has been interned.
func (d *Dictionary) Lookup(name string) (Item, bool) {
	it, ok := d.toItem[name]
	return it, ok
}

// Name returns the string for it, or "" if it was never interned. Dummy keys
// (items above Size) are reported as "" as well: they never correspond to
// real data and Algorithm 2's post-processing removes them before release.
func (d *Dictionary) Name(it Item) string {
	i := int(it) - 1
	if i < 0 || i >= len(d.toName) {
		return ""
	}
	return d.toName[i]
}

// Size returns d, the number of interned names, i.e. the realised universe
// size.
func (d *Dictionary) Size() int { return len(d.toName) }

// Freeze prevents further interning. A frozen dictionary pins the universe
// size d, which the pure-DP release of Section 6 needs to know up front.
func (d *Dictionary) Freeze() { d.frozen = true }
