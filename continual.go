package dpmg

import (
	"dpmg/internal/continual"
	"dpmg/internal/hist"
)

// ContinualStrategy selects how a ContinualMonitor spends its budget across
// epochs.
type ContinualStrategy = continual.Strategy

const (
	// ContinualUniform re-releases a single growing sketch every epoch with
	// a per-epoch budget from advanced composition. Simple; per-epoch noise
	// grows with sqrt(T).
	ContinualUniform = continual.Uniform
	// ContinualDyadic releases each dyadic block of epochs once (the binary
	// mechanism). Per-epoch noise grows only polylogarithmically in T;
	// prefer it beyond a few dozen epochs.
	ContinualDyadic = continual.Dyadic
)

// ContinualMonitor publishes a private heavy-hitters snapshot of the whole
// stream prefix at the end of every epoch, spending one fixed total privacy
// budget across all T epochs (the continual-observation setting of Chan et
// al., with the paper's Algorithm 2 as the release subroutine).
type ContinualMonitor struct {
	inner *continual.Monitor
}

// NewContinualMonitor returns a monitor over the universe [1, d] with k
// counters per sketch, publishing exactly `epochs` snapshots under a total
// (p.Eps, p.Delta) budget.
func NewContinualMonitor(k int, d uint64, epochs int, p Params, strategy ContinualStrategy, seed uint64) (*ContinualMonitor, error) {
	m, err := continual.NewMonitor(continual.Options{
		K: k, Universe: d, Epochs: epochs,
		Eps: p.Eps, Delta: p.Delta, Strategy: strategy, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &ContinualMonitor{inner: m}, nil
}

// Update feeds one stream element into the current epoch.
func (m *ContinualMonitor) Update(x Item) { m.inner.Update(x) }

// EndEpoch closes the current epoch and returns the private snapshot of the
// entire prefix. It errors once all budgeted epochs have been published.
func (m *ContinualMonitor) EndEpoch() (Histogram, error) {
	rel, err := m.inner.EndEpoch()
	if err != nil {
		return nil, err
	}
	return Histogram(hist.Estimate(rel)), nil
}

// Epoch returns the number of snapshots published so far.
func (m *ContinualMonitor) Epoch() int { return m.inner.Epoch() }

// ReleaseView snapshots the monitor's whole-prefix sketch (a genuine
// single-stream Algorithm 1 sketch, so Lemma 8 applies) for the unified
// release path. This enables ad-hoc releases outside the epoch schedule —
// e.g. an on-demand dashboard query between epoch boundaries:
//
//	h, err := dpmg.Release(mon, pAdHoc, dpmg.WithAccountant(acct))
//
// Such a release is NOT covered by the monitor's own epoch budget: it is an
// additional privacy spend on the same stream, which is why it should
// always be metered with WithAccountant against a separately provisioned
// budget.
func (m *ContinualMonitor) ReleaseView() (*ReleaseView, error) {
	return (&Sketch{inner: m.inner.PrefixSketch()}).ReleaseView()
}

// PerEpochEps returns the per-release epsilon the strategy arrived at,
// useful for predicting per-snapshot noise.
func (m *ContinualMonitor) PerEpochEps() float64 { return m.inner.PerEpochEps() }
