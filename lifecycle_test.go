package dpmg

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpmg/internal/workload"
)

// fakeClock is a settable lifecycle clock for deterministic TTL tests.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64              { return c.ns.Load() }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// lifecycleManager is testManager plus an injected clock and a DirStore in
// a temp dir.
func lifecycleManager(t *testing.T) (*Manager, *fakeClock, *DirStore, string) {
	t.Helper()
	m := testManager(t)
	clk := &fakeClock{}
	clk.ns.Store(int64(time.Hour))
	m.nowFn = clk.now
	dir := filepath.Join(t.TempDir(), "streams")
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetOffloadStore(store); err != nil {
		t.Fatal(err)
	}
	return m, clk, store, dir
}

// normalizeLifecycle zeroes the process-lifetime observability fields so
// stats of a stream and its offloaded/restored twin can be compared.
func normalizeLifecycle(s StreamStats) StreamStats {
	s.Resident = false
	s.Evictions, s.FaultIns = 0, 0
	s.ThrottledIngest, s.ThrottledReleases = 0, 0
	return s
}

// slowMechanism is a registry mechanism whose Release blocks until the
// test releases it — the deterministic way to hold a release in flight.
type slowMechanism struct {
	mu      sync.Mutex
	started chan struct{}
	unblock chan struct{}
}

func (s *slowMechanism) arm() (started, unblock chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.started = make(chan struct{})
	s.unblock = make(chan struct{})
	return s.started, s.unblock
}

func (s *slowMechanism) Name() string { return "slowtest" }

func (s *slowMechanism) Calibrate(p Params, sens Sensitivity) (*Calibration, error) {
	return NewCalibration(map[string]float64{"slow": 1}, nil), nil
}

func (s *slowMechanism) Release(view *ReleaseView, cal *Calibration, seed uint64) Histogram {
	s.mu.Lock()
	started, unblock := s.started, s.unblock
	s.mu.Unlock()
	if started != nil {
		close(started)
		<-unblock
	}
	return Histogram{}
}

var (
	slowMech     = &slowMechanism{}
	slowMechOnce sync.Once
)

func registerSlowMech(t *testing.T) {
	t.Helper()
	slowMechOnce.Do(func() {
		if err := RegisterMechanism(slowMech); err != nil {
			t.Fatal(err)
		}
	})
}

// TestEvictFaultInRoundTrip is the differential pin of the lifecycle tier:
// an offloaded-and-faulted-in stream is indistinguishable from a resident
// twin restored from a manager snapshot — identical stats, byte-identical
// seeded releases, exact remaining budgets, and identical continuation.
func TestEvictFaultInRoundTrip(t *testing.T) {
	m, _, store, _ := lifecycleManager(t)
	st, _, err := m.CreateStream("tenant", StreamConfig{Mechanism: MechanismLaplace})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch(workload.HeavyTail(40000, 1000, 3, 0.9, 11)); err != nil {
		t.Fatal(err)
	}
	edge := NewSketch(32, 1000)
	edge.UpdateBatch(workload.Zipf(10000, 1000, 1.2, 12))
	sum, err := edge.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.IngestSummary(sum); err != nil {
		t.Fatal(err)
	}
	// Spend some budget so the round trip carries accountant history.
	if _, err := st.ReleaseDetailed(Params{Eps: 1, Delta: 1e-5}, WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	before, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// Resident twin via the manager snapshot path (the pinned-exact
	// restore from PR 4): the offload round trip must match it everywhere.
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	twinMgr, err := RestoreManager(bytes.NewReader(buf.Bytes()), m.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	twin, ok := twinMgr.Stream("tenant")
	if !ok {
		t.Fatal("twin missing")
	}

	if evicted, err := m.Evict("tenant"); !evicted || err != nil {
		t.Fatalf("Evict = %v, %v", evicted, err)
	}
	if st.Resident() {
		t.Fatal("stream still resident after Evict")
	}
	if _, err := store.Load("tenant"); err != nil {
		t.Fatalf("offload record missing: %v", err)
	}
	// Stats are served from the stub without faulting in, and match the
	// live values captured before the eviction.
	mid, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Resident() {
		t.Fatal("Stats faulted the stream back in")
	}
	if mid.Resident || mid.Evictions != 1 {
		t.Fatalf("offloaded stats lifecycle fields: %+v", mid)
	}
	if normalizeLifecycle(mid) != normalizeLifecycle(before) {
		t.Errorf("offloaded stats diverge:\n  before %+v\n  after  %+v", before, mid)
	}

	// Seeded release faults the stream in and matches the resident twin
	// byte for byte; both spend their accountants identically.
	ho, err1 := st.ReleaseDetailed(Params{Eps: 0.25, Delta: 1e-6}, WithSeed(99))
	ht, err2 := twin.ReleaseDetailed(Params{Eps: 0.25, Delta: 1e-6}, WithSeed(99))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !st.Resident() {
		t.Fatal("release did not fault the stream in")
	}
	if !equalHistograms(ho.Histogram, ht.Histogram) {
		t.Error("seeded release diverges after evict → fault-in")
	}
	if ro, rt := st.Accountant().Remaining(), twin.Accountant().Remaining(); ro != rt {
		t.Errorf("remaining budget diverges: %+v vs %+v", ro, rt)
	}

	// Continuation: both copies respond identically to more data.
	cont := workload.Zipf(5000, 400, 1.1, 14)
	if err := st.UpdateBatch(cont); err != nil {
		t.Fatal(err)
	}
	if err := twin.UpdateBatch(cont); err != nil {
		t.Fatal(err)
	}
	ho, err1 = st.ReleaseDetailed(Params{Eps: 0.25, Delta: 1e-6}, WithSeed(100))
	ht, err2 = twin.ReleaseDetailed(Params{Eps: 0.25, Delta: 1e-6}, WithSeed(100))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !equalHistograms(ho.Histogram, ht.Histogram) {
		t.Error("continuation release diverges after evict → fault-in")
	}
	so, errA := st.Stats()
	sr, errB := twin.Stats()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if normalizeLifecycle(so) != normalizeLifecycle(sr) {
		t.Errorf("final stats diverge:\n  evicted %+v\n  twin    %+v", so, sr)
	}
}

// TestEvictIdleTTL: only streams idle past the TTL are evicted; TTL <= 0
// never evicts; the next access faults in transparently; Stats and the
// metrics-style reads do not count as accesses.
func TestEvictIdleTTL(t *testing.T) {
	m, clk, _, _ := lifecycleManager(t)
	a, _, err := m.CreateStream("a", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.CreateStream("b", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []*Stream{a, b} {
		if err := st.UpdateBatch([]Item{1, 2, 3, 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(10 * time.Minute)
	if err := b.Update(7); err != nil { // touch b: no longer idle
		t.Fatal(err)
	}
	// Reading stats must not keep a hot: it is not a data access.
	if _, err := a.Stats(); err != nil {
		t.Fatal(err)
	}
	// TTL = 0 (and negative): never evict, even though both are idle.
	if n, err := m.EvictIdle(0); n != 0 || err != nil {
		t.Fatalf("EvictIdle(0) = %d, %v", n, err)
	}
	if n, err := m.EvictIdle(-time.Second); n != 0 || err != nil {
		t.Fatalf("EvictIdle(<0) = %d, %v", n, err)
	}
	if n, err := m.EvictIdle(5 * time.Minute); n != 1 || err != nil {
		t.Fatalf("EvictIdle = %d, %v", n, err)
	}
	if a.Resident() || !b.Resident() {
		t.Fatalf("residency after sweep: a=%v b=%v", a.Resident(), b.Resident())
	}
	// Transparent fault-in on the next data access.
	if err := a.UpdateBatch([]Item{9, 9}); err != nil {
		t.Fatal(err)
	}
	if !a.Resident() {
		t.Fatal("access did not fault a back in")
	}
	if lc := a.Lifecycle(); lc.Evictions != 1 || lc.FaultIns != 1 {
		t.Fatalf("lifecycle counters = %+v", lc)
	}
	if got := a.EstimateExact(9); got != 2 {
		t.Fatalf("post-fault-in estimate = %d", got)
	}
}

// TestDoubleOffloadIdempotent: offloading an offloaded stream is a no-op,
// and because the record encoding is canonical, re-evicting unchanged
// state writes byte-identical records.
func TestDoubleOffloadIdempotent(t *testing.T) {
	m, clk, store, _ := lifecycleManager(t)
	st, _, err := m.CreateStream("s", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch(workload.Zipf(5000, 1000, 1.2, 3)); err != nil {
		t.Fatal(err)
	}
	est := st.EstimateExact(1)
	if evicted, err := m.Evict("s"); !evicted || err != nil {
		t.Fatalf("first Evict = %v, %v", evicted, err)
	}
	rec1, err := store.Load("s")
	if err != nil {
		t.Fatal(err)
	}
	// Second offload: no-op, record untouched.
	if evicted, err := m.Evict("s"); evicted || err != nil {
		t.Fatalf("second Evict = %v, %v", evicted, err)
	}
	clk.advance(time.Hour)
	if n, err := m.EvictIdle(time.Minute); n != 0 || err != nil {
		t.Fatalf("EvictIdle over offloaded stream = %d, %v", n, err)
	}
	rec2, err := store.Load("s")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec1, rec2) {
		t.Error("double offload rewrote the record")
	}
	if lc := st.Lifecycle(); lc.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", lc.Evictions)
	}
	// Fault in, mutate nothing, evict again: canonical encoding means the
	// record is byte-identical.
	if got := st.EstimateExact(1); got != est {
		t.Fatalf("estimate after fault-in = %d, want %d", got, est)
	}
	if evicted, err := m.Evict("s"); !evicted || err != nil {
		t.Fatalf("re-Evict = %v, %v", evicted, err)
	}
	rec3, err := store.Load("s")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec1, rec3) {
		t.Error("unchanged state re-offloaded to different bytes (canonicality)")
	}
}

// TestFaultInAfterRestart: a restarted manager (snapshot restore +
// RecoverOffloaded) serves an evicted stream from its stub and faults it
// in on first access with byte-identical releases and exact budgets.
func TestFaultInAfterRestart(t *testing.T) {
	m, clk, _, dir := lifecycleManager(t)
	cold, _, err := m.CreateStream("cold", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hot, _, err := m.CreateStream("hot", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.UpdateBatch(workload.HeavyTail(30000, 1000, 3, 0.9, 21)); err != nil {
		t.Fatal(err)
	}
	if err := hot.UpdateBatch(workload.Zipf(10000, 1000, 1.2, 22)); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.ReleaseDetailed(Params{Eps: 0.5, Delta: 1e-5}, WithSeed(5)); err != nil {
		t.Fatal(err)
	}
	coldStats, err := cold.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if evicted, err := m.Evict("cold"); !evicted || err != nil {
		t.Fatalf("Evict = %v, %v", evicted, err)
	}
	// The manager snapshot holds only the resident stream.
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager over the same snapshot and offload dir.
	m2, err := RestoreManager(bytes.NewReader(buf.Bytes()), m.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	m2.nowFn = clk.now
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.SetOffloadStore(store2); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 1 {
		t.Fatalf("pre-recover Len = %d, want 1 (hot only)", m2.Len())
	}
	if n, err := m2.RecoverOffloaded(); n != 1 || err != nil {
		t.Fatalf("RecoverOffloaded = %d, %v", n, err)
	}
	if m2.Len() != 2 {
		t.Fatalf("post-recover Len = %d", m2.Len())
	}
	// Idempotent: nothing left to recover.
	if n, err := m2.RecoverOffloaded(); n != 0 || err != nil {
		t.Fatalf("second RecoverOffloaded = %d, %v", n, err)
	}
	cold2, ok := m2.Stream("cold")
	if !ok {
		t.Fatal("cold missing after recover")
	}
	if cold2.Resident() {
		t.Fatal("recovered stream should stay offloaded until first access")
	}
	// Stub stats match the pre-eviction live stats.
	s2, err := cold2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if normalizeLifecycle(s2) != normalizeLifecycle(coldStats) {
		t.Errorf("recovered stub stats diverge:\n  before %+v\n  after  %+v", coldStats, s2)
	}
	// First access faults in; the original (also offloaded, same record)
	// must agree byte for byte under the same seed, with equal budgets.
	h1, err1 := cold.ReleaseDetailed(Params{Eps: 0.25, Delta: 1e-6}, WithSeed(77))
	h2, err2 := cold2.ReleaseDetailed(Params{Eps: 0.25, Delta: 1e-6}, WithSeed(77))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !equalHistograms(h1.Histogram, h2.Histogram) {
		t.Error("post-restart seeded release diverges")
	}
	if r1, r2 := cold.Accountant().Remaining(), cold2.Accountant().Remaining(); r1 != r2 {
		t.Errorf("post-restart remaining budget diverges: %+v vs %+v", r1, r2)
	}
}

// TestEvictWhileIngesting is the -race interlock pin: force-evictions
// sweep a stream while goroutines ingest; every admitted batch must
// survive the offload/fault-in churn (the lifecycle lock drains in-flight
// batches before offloading, so nothing can land in a dropped sketch).
func TestEvictWhileIngesting(t *testing.T) {
	m, _, _, _ := lifecycleManager(t)
	if _, _, err := m.CreateStream("s", StreamConfig{}); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Stream("s")
	const (
		workers = 4
		rounds  = 50
		batch   = 256
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			xs := make([]Item, batch)
			for i := range xs {
				xs[i] = Item(w + 1) // one distinct heavy item per worker: exact counts
			}
			for r := 0; r < rounds; r++ {
				if err := st.UpdateBatch(xs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() { // eviction storm
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := m.Evict("s"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // concurrent manager snapshots skip/include as they race
		defer wg.Done()
		for i := 0; i < 10; i++ {
			var buf bytes.Buffer
			if err := m.Snapshot(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(workers * rounds * batch); stats.Ingested != want {
		t.Fatalf("ingested %d, want %d", stats.Ingested, want)
	}
	// With ≤ k distinct items the sketch never decrements: per-item counts
	// are exact, so any update lost in an eviction race would show here.
	// EstimateExact: the published view is bounded-stale by design, and a
	// lost-update detector must read the live counters.
	for w := 0; w < workers; w++ {
		if got := st.EstimateExact(Item(w + 1)); got != rounds*batch {
			t.Fatalf("worker %d item count = %d, want %d (updates lost in eviction race)", w, got, rounds*batch)
		}
	}
}

// TestDeleteMidReleaseConflict is the regression test for the
// delete-vs-release race: with a release deterministically held in flight,
// DeleteStream must refuse with ErrStreamConflict instead of deleting the
// stream out from under the release's view.
func TestDeleteMidReleaseConflict(t *testing.T) {
	registerSlowMech(t)
	m, _, _, _ := lifecycleManager(t)
	st, _, err := m.CreateStream("victim", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch([]Item{1, 2, 3, 1}); err != nil {
		t.Fatal(err)
	}
	started, unblock := slowMech.arm()
	relErr := make(chan error, 1)
	go func() {
		_, err := st.ReleaseDetailed(Params{Eps: 0.5, Delta: 1e-5}, WithMechanism("slowtest"), WithSeed(1))
		relErr <- err
	}()
	<-started // the release is now provably mid-flight
	deleted, err := m.DeleteStream("victim")
	if deleted || !errors.Is(err, ErrStreamConflict) {
		t.Fatalf("DeleteStream mid-release = %v, %v; want false, ErrStreamConflict", deleted, err)
	}
	if _, ok := m.Stream("victim"); !ok {
		t.Fatal("stream vanished despite refused delete")
	}
	close(unblock)
	if err := <-relErr; err != nil {
		t.Fatalf("in-flight release failed: %v", err)
	}
	// Quiet stream: the delete now succeeds.
	if deleted, err := m.DeleteStream("victim"); !deleted || err != nil {
		t.Fatalf("post-release DeleteStream = %v, %v", deleted, err)
	}
}

// TestStreamQoSRateLimit drives the token bucket through the manager
// facade with a synthetic clock.
func TestStreamQoSRateLimit(t *testing.T) {
	m, clk, _, _ := lifecycleManager(t)
	st, _, err := m.CreateStream("limited", StreamConfig{MaxIngestRate: 100, IngestBurst: 10})
	if err != nil {
		t.Fatal(err)
	}
	tenOf := func(x Item) []Item {
		xs := make([]Item, 10)
		for i := range xs {
			xs[i] = x
		}
		return xs
	}
	if err := st.UpdateBatch(tenOf(1)); err != nil {
		t.Fatalf("burst-sized batch refused: %v", err)
	}
	if err := st.Update(2); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst update err = %v, want ErrRateLimited", err)
	}
	clk.advance(100 * time.Millisecond) // 10 tokens at 100 items/s
	if err := st.UpdateBatch(tenOf(3)); err != nil {
		t.Fatalf("refilled batch refused: %v", err)
	}
	// A rejected batch is all-or-nothing: nothing ingested, no tokens burned.
	if err := st.UpdateBatch(tenOf(4)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("empty-bucket batch err = %v, want ErrRateLimited", err)
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ingested != 20 || stats.ThrottledIngest != 2 {
		t.Fatalf("ingested %d throttled %d, want 20, 2", stats.Ingested, stats.ThrottledIngest)
	}
	// Negative rate: explicitly unlimited, even when the manager default
	// (or another stream) throttles.
	free, _, err := m.CreateStream("free", StreamConfig{MaxIngestRate: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := free.UpdateBatch(workload.Zipf(100000, 1000, 1.1, 1)); err != nil {
		t.Fatalf("unlimited stream throttled: %v", err)
	}
}

// TestStreamQoSReleaseGate holds one release in flight and checks the
// in-flight ceiling refuses the second with no budget spent.
func TestStreamQoSReleaseGate(t *testing.T) {
	registerSlowMech(t)
	m, _, _, _ := lifecycleManager(t)
	st, _, err := m.CreateStream("g", StreamConfig{MaxInflightReleases: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch([]Item{1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	started, unblock := slowMech.arm()
	relErr := make(chan error, 1)
	go func() {
		_, err := st.ReleaseDetailed(Params{Eps: 0.5, Delta: 1e-5}, WithMechanism("slowtest"), WithSeed(1))
		relErr <- err
	}()
	<-started
	if _, err := st.ReleaseDetailed(Params{Eps: 0.5, Delta: 1e-5}, WithSeed(2)); !errors.Is(err, ErrReleaseBusy) {
		t.Fatalf("second release err = %v, want ErrReleaseBusy", err)
	}
	close(unblock)
	if err := <-relErr; err != nil {
		t.Fatal(err)
	}
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Releases != 1 || stats.ThrottledReleases != 1 {
		t.Fatalf("releases %d throttled %d, want 1, 1", stats.Releases, stats.ThrottledReleases)
	}
	// The gate drained: releases work again.
	if _, err := st.ReleaseDetailed(Params{Eps: 0.5, Delta: 1e-5}, WithSeed(3)); err != nil {
		t.Fatal(err)
	}
}

// TestLifecycleRequiresStore: eviction APIs fail cleanly without a store,
// and the store can be attached at most once.
func TestLifecycleRequiresStore(t *testing.T) {
	m := testManager(t)
	if _, _, err := m.CreateStream("s", StreamConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evict("s"); err == nil {
		t.Error("Evict without store succeeded")
	}
	if _, err := m.EvictIdle(time.Second); err == nil {
		t.Error("EvictIdle without store succeeded")
	}
	if _, err := m.RecoverOffloaded(); err == nil {
		t.Error("RecoverOffloaded without store succeeded")
	}
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetOffloadStore(store); err != nil {
		t.Fatal(err)
	}
	if err := m.SetOffloadStore(store); err == nil {
		t.Error("second SetOffloadStore succeeded")
	}
	if err := m.SetOffloadStore(nil); err == nil {
		t.Error("nil store accepted")
	}
}

// TestDeleteStreamRemovesOffloadRecord: deleting an offloaded stream
// removes its record, so a re-created name starts fresh.
func TestDeleteStreamRemovesOffloadRecord(t *testing.T) {
	m, _, store, _ := lifecycleManager(t)
	st, _, err := m.CreateStream("s", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch([]Item{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evict("s"); err != nil {
		t.Fatal(err)
	}
	if deleted, err := m.DeleteStream("s"); !deleted || err != nil {
		t.Fatalf("DeleteStream = %v, %v", deleted, err)
	}
	if _, err := store.Load("s"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("offload record survived delete: %v", err)
	}
	// Re-created name: fresh state, nothing recovered from disk.
	st2, _, err := m.CreateStream("s", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := st2.Stats(); err != nil || got.Ingested != 0 {
		t.Fatalf("re-created stream stats = %+v, %v", got, err)
	}
}

// TestDeleteTombstoneBlocksOffload: an eviction sweep that grabbed a
// *Stream handle before DeleteStream removed it must not write a fresh
// offload record afterwards — the record would resurrect the deleted
// tenant's counters at the next recovery.
func TestDeleteTombstoneBlocksOffload(t *testing.T) {
	m, _, store, _ := lifecycleManager(t)
	st, _, err := m.CreateStream("victim", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch([]Item{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if deleted, err := m.DeleteStream("victim"); !deleted || err != nil {
		t.Fatalf("DeleteStream = %v, %v", deleted, err)
	}
	// The sweep's stale handle tries to offload after the delete.
	st.life.Lock()
	err = st.offloadLocked(store)
	st.life.Unlock()
	if err != nil {
		t.Fatalf("offload of deleted stream errored (want silent no-op): %v", err)
	}
	if _, err := store.Load("victim"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("deleted stream's offload record was resurrected: %v", err)
	}
	// The public sweep paths also skip it.
	if evicted, err := m.Evict("victim"); evicted || err != nil {
		t.Fatalf("Evict of deleted stream = %v, %v", evicted, err)
	}
}

// TestRecoverPrefersNewerRecord: after evict-then-crash, the offload
// record post-dates the last manager snapshot; recovery must prefer it —
// restoring the older resident copy would resurrect spent privacy budget
// and drop ingested data. The stale-shadow direction (resident newer than
// the record) must still prefer the resident copy.
func TestRecoverPrefersNewerRecord(t *testing.T) {
	m, clk, _, dir := lifecycleManager(t)
	st, _, err := m.CreateStream("s", StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch(workload.Zipf(10000, 1000, 1.2, 1)); err != nil {
		t.Fatal(err)
	}
	// Periodic flush at t0: resident snapshot with 10000 items, no spend.
	var snapT0 bytes.Buffer
	if err := m.Snapshot(&snapT0); err != nil {
		t.Fatal(err)
	}
	// After t0: more data, a release, then eviction — the record now
	// post-dates the snapshot. Crash before any further flush.
	if err := st.UpdateBatch(workload.Zipf(5000, 1000, 1.2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReleaseDetailed(Params{Eps: 1, Delta: 1e-5}, WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evict("s"); err != nil {
		t.Fatal(err)
	}
	wantRemaining := st.Accountant().Remaining()

	m2, err := RestoreManager(bytes.NewReader(snapT0.Bytes()), m.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	m2.nowFn = clk.now
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.SetOffloadStore(store2); err != nil {
		t.Fatal(err)
	}
	if n, err := m2.RecoverOffloaded(); n != 1 || err != nil {
		t.Fatalf("RecoverOffloaded = %d, %v (record should replace stale resident state)", n, err)
	}
	st2, _ := m2.Stream("s")
	if st2.Resident() {
		t.Fatal("replaced stream should be an offloaded stub")
	}
	if got := st2.Accountant().Remaining(); got != wantRemaining {
		t.Fatalf("remaining budget %+v, want %+v (stale snapshot resurrected spent budget)", got, wantRemaining)
	}
	if got := st2.Ingested(); got != 15000 {
		t.Fatalf("ingested %d, want 15000 (stale snapshot dropped data)", got)
	}

	// Stale-shadow direction: fault in, ingest more, snapshot — the
	// resident copy is now newer than the record and must win.
	if err := st2.UpdateBatch(workload.Zipf(2000, 1000, 1.2, 3)); err != nil {
		t.Fatal(err)
	}
	var snapT1 bytes.Buffer
	if err := m2.Snapshot(&snapT1); err != nil {
		t.Fatal(err)
	}
	m3, err := RestoreManager(bytes.NewReader(snapT1.Bytes()), m.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	m3.nowFn = clk.now
	store3, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.SetOffloadStore(store3); err != nil {
		t.Fatal(err)
	}
	if n, err := m3.RecoverOffloaded(); n != 0 || err != nil {
		t.Fatalf("RecoverOffloaded = %d, %v (stale shadow record must not replace newer resident state)", n, err)
	}
	st3, _ := m3.Stream("s")
	if got := st3.Ingested(); got != 17000 {
		t.Fatalf("ingested %d, want 17000", got)
	}
}

func TestDirStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "streams")
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirStore(""); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := s.Load("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing Load err = %v, want fs.ErrNotExist", err)
	}
	if err := s.Save("a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("a", []byte("v2")); err != nil { // atomic replace
		t.Fatal(err)
	}
	if got, err := s.Load("a"); err != nil || string(got) != "v2" {
		t.Fatalf("Load = %q, %v", got, err)
	}
	// Stale temp files from a crashed save are ignored and swept by List.
	stale := filepath.Join(dir, "b"+streamFileSuffix+".tmp-123")
	if err := os.WriteFile(stale, []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("List = %v", names)
	}
	if _, err := os.Stat(stale); !errors.Is(err, fs.ErrNotExist) {
		t.Error("List did not sweep the stale temp file")
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil { // idempotent
		t.Fatal(err)
	}
	if names, err := s.List(); err != nil || len(names) != 0 {
		t.Fatalf("List after delete = %v, %v", names, err)
	}
}

// TestManagerSnapshotSkipsOffloaded: the periodic flush must not fault
// idle tenants back in, and restoring the snapshot alone yields only the
// resident streams.
func TestManagerSnapshotSkipsOffloaded(t *testing.T) {
	m, _, _, _ := lifecycleManager(t)
	for _, name := range []string{"r", "e"} {
		st, _, err := m.CreateStream(name, StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.UpdateBatch([]Item{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Evict("e"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e, _ := m.Stream("e")
	if e.Resident() {
		t.Fatal("Snapshot faulted the offloaded stream in")
	}
	r2, err := RestoreManager(bytes.NewReader(buf.Bytes()), m.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 {
		t.Fatalf("restored %d streams, want 1 (resident only)", r2.Len())
	}
	if _, ok := r2.Stream("r"); !ok {
		t.Fatal("resident stream missing from snapshot")
	}
}

// TestEvictIdleConcurrentTouch: a stream touched between the idle check
// and the exclusive lock is spared — the sweep re-checks under the lock.
func TestEvictIdleConcurrentTouch(t *testing.T) {
	m, clk, _, _ := lifecycleManager(t)
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		st, _, err := m.CreateStream(names[i], StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Update(1); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(time.Hour)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // toucher: keeps half the streams hot
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for j := 0; j < len(names); j += 2 {
				st, _ := m.Stream(names[j])
				if err := st.Update(2); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := m.EvictIdle(time.Minute); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	// The touched streams were just accessed at the frozen clock, so the
	// final sweep must leave them resident; the untouched half is gone.
	if _, err := m.EvictIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	for j, name := range names {
		st, _ := m.Stream(name)
		if touched := j%2 == 0; st.Resident() != touched {
			t.Errorf("stream %s resident=%v, want %v", name, st.Resident(), touched)
		}
	}
}

// TestDirStoreTempLikeStreamName: dots and dashes are legal in stream
// names after the first character, so a stream can be named such that its
// record file contains the temp-file marker ("a.stream.tmp-1" →
// "a.stream.tmp-1.stream"). List must treat it as the record it is — not
// sweep it as a stale temp, which would silently destroy the stream's
// durable counters and spent-budget record at the next recovery.
func TestDirStoreTempLikeStreamName(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "streams")
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const name = "a" + streamFileSuffix + ".tmp-1" // a.stream.tmp-1
	if err := s.Save(name, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// A genuine stale temp for the same stream, as a crashed Save leaves it.
	stale := filepath.Join(dir, name+streamFileSuffix+".tmp-123456")
	if err := os.WriteFile(stale, []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != name {
		t.Fatalf("List = %v, want [%s]", names, name)
	}
	if _, err := os.Stat(stale); !errors.Is(err, fs.ErrNotExist) {
		t.Error("List did not sweep the genuine stale temp file")
	}
	if got, err := s.Load(name); err != nil || string(got) != "payload" {
		t.Fatalf("record destroyed by List: Load = %q, %v", got, err)
	}
}

// TestRecoverTempLikeStreamName is the end-to-end pin of the same hazard:
// a stream whose name embeds the temp-file marker survives evict → restart
// → RecoverOffloaded → fault-in with its data and budget intact.
func TestRecoverTempLikeStreamName(t *testing.T) {
	m, clk, _, dir := lifecycleManager(t)
	const name = "tenant.stream.tmp-1"
	st, _, err := m.CreateStream(name, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.UpdateBatch([]Item{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if evicted, err := m.Evict(name); !evicted || err != nil {
		t.Fatalf("Evict = %v, %v", evicted, err)
	}

	m2, err := NewManager(m.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	m2.nowFn = clk.now
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.SetOffloadStore(store2); err != nil {
		t.Fatal(err)
	}
	if n, err := m2.RecoverOffloaded(); n != 1 || err != nil {
		t.Fatalf("RecoverOffloaded = %d, %v, want 1 recovered", n, err)
	}
	st2, ok := m2.Stream(name)
	if !ok {
		t.Fatalf("stream %q not recovered", name)
	}
	if err := st2.Update(4); err != nil { // faults in
		t.Fatalf("fault-in after recovery: %v", err)
	}
	if got := st2.Ingested(); got != 4 {
		t.Fatalf("ingested = %d, want 4", got)
	}
}

// TestDeleteRecreateEvictNoRecordLoss: DeleteStream's offload-record
// removal is atomic with the registry removal, so a concurrent
// recreate-then-evict of the same name can never have its fresh record
// destroyed by a stale delete — which would strand the registered stream
// offloaded with nothing to fault in from. Run with -race.
func TestDeleteRecreateEvictNoRecordLoss(t *testing.T) {
	m, _, _, _ := lifecycleManager(t)
	const name = "tenant"
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.DeleteStream(name); err != nil && !errors.Is(err, ErrStreamConflict) {
				t.Errorf("DeleteStream: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 300 && !t.Failed(); i++ {
		if _, _, err := m.CreateStream(name, StreamConfig{}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Evict(name); err != nil {
			t.Fatal(err)
		}
		st, ok := m.Stream(name)
		if !ok {
			continue // deleter got there first; nothing to check
		}
		if err := st.Update(1); err != nil {
			// An orphaned handle (deleted between the Get and the Update)
			// may legitimately fail its fault-in — its record is gone with
			// the stream. A handle that is still the registered instance
			// must never fail: that is the destroyed-record bug.
			if cur, ok := m.Stream(name); ok && cur == st {
				t.Fatalf("registered stream lost its offload record: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestIngestRefundOnFaultInFailure: a failed fault-in ingests nothing, so
// the tokens its admission consumed are refunded — a tenant whose offload
// record is broken gets the real error on every retry, not a spurious
// ErrRateLimited once the bucket drains.
func TestIngestRefundOnFaultInFailure(t *testing.T) {
	m, clk, store, _ := lifecycleManager(t)
	st, _, err := m.CreateStream("tenant", StreamConfig{MaxIngestRate: 1, IngestBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Update(1); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second) // refill the one-token bucket
	if evicted, err := m.Evict("tenant"); !evicted || err != nil {
		t.Fatalf("Evict = %v, %v", evicted, err)
	}
	data, err := store.Load("tenant")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("tenant"); err != nil {
		t.Fatal(err)
	}
	// Broken record: repeated attempts all surface the fault-in error. At
	// one token per two clock-frozen attempts, the second would be
	// ErrRateLimited if the first had kept its token.
	for i, ingest := range []func() error{
		func() error { return st.Update(2) },
		func() error { return st.UpdateBatch([]Item{3}) },
	} {
		err := ingest()
		if err == nil {
			t.Fatalf("attempt %d: ingest with missing record succeeded", i)
		}
		if errors.Is(err, ErrRateLimited) {
			t.Fatalf("attempt %d: spuriously rate-limited instead of fault-in error: %v", i, err)
		}
	}
	// Repair the record: the very next ingest must be admitted — a
	// refund-less limiter would still be drained by the failed attempts.
	if err := store.Save("tenant", data); err != nil {
		t.Fatal(err)
	}
	if err := st.Update(4); err != nil {
		t.Fatalf("ingest after repair: %v", err)
	}
	if lc := st.Lifecycle(); lc.ThrottledIngest != 0 {
		t.Fatalf("ThrottledIngest = %d, want 0 (fault-in failures are not throttles)", lc.ThrottledIngest)
	}
}
